"""Labelled counters / gauges / histograms with Prometheus text exposition.

One stdlib-only registry unifies every counter surface in the stack: the
engine's cache hit/miss and run counts, the grid campaign counters
(resumed / retried / quarantined / ...), the artifact-store put counters
and the service's request ledger all live here, while the legacy
``Engine.stats()`` / ``/stats`` payloads are synthesized from the same
instruments so their shapes never change.

Design points:

* **Integer-preserving**: counters incremented by ints stay ints, so the
  compatibility shims that rebuild ``stats()`` dictionaries re-serialize
  byte-identically (``1`` , never ``1.0``).
* **Label series on demand**: a ``(name, labels)`` series exists only once
  touched -- matching the legacy dicts, which only grew keys that fired.
* **Pull or push**: most instruments are pushed at the call site;
  externally-owned counters (the store's internal put ledger) are synced
  with :meth:`Counter.set_to` right before a scrape.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: Default histogram buckets, in milliseconds: the stack's latencies span
#: sub-millisecond warm hits to multi-second cold grid campaigns.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)


def _escape_label(value: object) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_number(value: Number) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _series_line(
    name: str, labelnames: Sequence[str], labelvalues: Sequence[object], value: Number
) -> str:
    if not labelnames:
        return f"{name} {_format_number(value)}"
    body = ",".join(
        f'{label}="{_escape_label(val)}"'
        for label, val in zip(labelnames, labelvalues)
    )
    return f"{name}{{{body}}} {_format_number(value)}"


class _Metric:
    """Shared label plumbing of every instrument kind."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, object]) -> Tuple[object, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(labels[name] for name in self.labelnames)


class Counter(_Metric):
    """A monotonically increasing count, one series per label combination."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[object, ...], Number] = {}

    def inc(self, amount: Number = 1, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def touch(self, **labels: object) -> None:
        """Materialize a series at zero (so scrapes show it before it fires)."""
        key = self._key(labels)
        with self._lock:
            self._values.setdefault(key, 0)

    def set_to(self, value: Number, **labels: object) -> None:
        """Sync this series to an externally-tracked monotonic count.

        The migration shim for counters whose source of truth lives
        elsewhere (e.g. a store's internal put ledger): call right before
        rendering so the scrape reflects the true total.
        """
        key = self._key(labels)
        with self._lock:
            self._values[key] = value

    def value(self, **labels: object) -> Number:
        return self._values.get(self._key(labels), 0)

    def series(self) -> Dict[Tuple[object, ...], Number]:
        with self._lock:
            return dict(self._values)

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} counter"]
        with self._lock:
            items = sorted(self._values.items(), key=lambda kv: tuple(map(str, kv[0])))
        for labelvalues, value in items:
            lines.append(_series_line(self.name, self.labelnames, labelvalues, value))
        return lines


class Gauge(_Metric):
    """A value that goes up and down (queue depth, in-flight entries)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[object, ...], Number] = {}

    def set(self, value: Number, **labels: object) -> None:
        with self._lock:
            self._values[self._key(labels)] = value

    def inc(self, amount: Number = 1, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: Number = 1, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> Number:
        return self._values.get(self._key(labels), 0)

    def series(self) -> Dict[Tuple[object, ...], Number]:
        with self._lock:
            return dict(self._values)

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} gauge"]
        with self._lock:
            items = sorted(self._values.items(), key=lambda kv: tuple(map(str, kv[0])))
        for labelvalues, value in items:
            lines.append(_series_line(self.name, self.labelnames, labelvalues, value))
        return lines


class Histogram(_Metric):
    """Cumulative-bucket distribution (Prometheus ``le`` convention)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        bounds = sorted(float(edge) for edge in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = tuple(bounds)
        # Per-series state: [bucket counts..., +Inf count], sum, count.
        self._counts: Dict[Tuple[object, ...], List[int]] = {}
        self._sums: Dict[Tuple[object, ...], float] = {}
        self._totals: Dict[Tuple[object, ...], int] = {}

    def observe(self, value: Number, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            counts = self._counts.setdefault(key, [0] * (len(self.buckets) + 1))
            for slot, edge in enumerate(self.buckets):
                if value <= edge:
                    counts[slot] += 1
                    break
            else:
                counts[-1] += 1
            self._sums[key] = self._sums.get(key, 0.0) + float(value)
            self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: object) -> int:
        return self._totals.get(self._key(labels), 0)

    def sum(self, **labels: object) -> float:
        return self._sums.get(self._key(labels), 0.0)

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} histogram"]
        with self._lock:
            items = sorted(self._counts.items(), key=lambda kv: tuple(map(str, kv[0])))
            for labelvalues, counts in items:
                cumulative = 0
                for slot, edge in enumerate(self.buckets):
                    cumulative += counts[slot]
                    lines.append(
                        _series_line(
                            f"{self.name}_bucket",
                            (*self.labelnames, "le"),
                            (*labelvalues, _format_number(edge)),
                            cumulative,
                        )
                    )
                cumulative += counts[-1]
                lines.append(
                    _series_line(
                        f"{self.name}_bucket",
                        (*self.labelnames, "le"),
                        (*labelvalues, "+Inf"),
                        cumulative,
                    )
                )
                lines.append(
                    _series_line(
                        f"{self.name}_sum",
                        self.labelnames,
                        labelvalues,
                        self._sums.get(labelvalues, 0.0),
                    )
                )
                lines.append(
                    _series_line(
                        f"{self.name}_count",
                        self.labelnames,
                        labelvalues,
                        self._totals.get(labelvalues, 0),
                    )
                )
        return lines


MetricLike = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create home of every instrument; renders one scrape document.

    ``counter`` / ``gauge`` / ``histogram`` are idempotent: asking for an
    existing name returns the existing instrument (and refuses a kind or
    label-schema conflict), so independent subsystems can share series
    without coordinating construction order.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, MetricLike] = {}
        self._collectors: List[Callable[[], None]] = []
        self._lock = threading.Lock()

    def _get_or_create(
        self, cls: type, name: str, help: str, labelnames: Sequence[str], **kwargs
    ) -> MetricLike:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                if existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)

    def get(self, name: str) -> Optional[MetricLike]:
        return self._metrics.get(name)

    def register_collector(self, collector: Callable[[], None]) -> None:
        """Run ``collector()`` before every render: the pull-model hook for
        gauges whose source of truth is elsewhere (store sizes, queue depth)."""
        self._collectors.append(collector)

    def metrics(self) -> List[MetricLike]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def render(self) -> str:
        """The Prometheus text exposition document (version 0.0.4)."""
        for collector in list(self._collectors):
            collector()
        lines: List[str] = []
        for metric in self.metrics():
            lines.extend(metric.render())
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> Dict[str, Dict[str, Number]]:
        """Flat ``{metric: {label-tuple-repr: value}}`` view for tests."""
        out: Dict[str, Dict[str, Number]] = {}
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                out[metric.name] = {
                    ",".join(map(str, key)): total
                    for key, total in metric._totals.items()
                }
            else:
                out[metric.name] = {
                    ",".join(map(str, key)): value
                    for key, value in metric.series().items()
                }
        return out


#: Process-wide registry for cross-cutting instruments that have no owning
#: session object (fault injections, module-level shims).  Engine/service
#: scrapes concatenate their session registry with this one.
GLOBAL_REGISTRY = MetricsRegistry()


def render_registries(*registries: MetricsRegistry) -> str:
    """One scrape document over several registries (duplicate names skipped)."""
    seen: set = set()
    lines: List[str] = []
    for registry in registries:
        for collector in list(registry._collectors):
            collector()
        for metric in registry.metrics():
            if metric.name in seen:
                continue
            seen.add(metric.name)
            lines.extend(metric.render())
    return "\n".join(lines) + "\n" if lines else ""
