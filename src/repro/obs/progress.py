"""The ``repro run --progress`` live line: one `\\r`-rewritten status row.

Fed per completed :class:`~repro.engine.GridPoint` (completion order --
exactly what ``Engine.iter_grid`` streams), it shows done/total, rate,
ETA and quarantine count, throttled so a fast grid does not spend its
time repainting a terminal.
"""

from __future__ import annotations

import math
import sys
import time
from typing import IO, Optional

#: Shortest elapsed wall-clock that yields a meaningful rate.  Below this a
#: grid finished inside one scheduler tick (fully checkpointed, or trivially
#: small) and ``done / elapsed`` is a division artifact, not a throughput.
MIN_MEASURABLE_SECONDS = 1e-3


class ProgressLine:
    """Campaign progress renderer over a completion-ordered point stream."""

    def __init__(
        self,
        total: int,
        stream: Optional[IO[str]] = None,
        label: str = "grid",
        min_interval: float = 0.1,
    ) -> None:
        self.total = max(0, total)
        self.stream = stream if stream is not None else sys.stderr
        self.label = label
        self.min_interval = min_interval
        self.done = 0
        self.quarantined = 0
        self._t0 = time.perf_counter()
        self._last_paint = 0.0
        self._painted = False

    def update(self, point: object = None) -> None:
        """Record one completed point (a GridPoint, a Result, or nothing)."""
        self.done += 1
        result = getattr(point, "result", point)
        if getattr(result, "kind", None) == "error":
            self.quarantined += 1
        now = time.perf_counter()
        if self.done >= self.total or now - self._last_paint >= self.min_interval:
            self._paint(now)

    def line(self, now: Optional[float] = None) -> str:
        now = time.perf_counter() if now is None else now
        elapsed = now - self._t0
        rate: Optional[float] = None
        if elapsed >= MIN_MEASURABLE_SECONDS:
            candidate = self.done / elapsed
            if math.isfinite(candidate):
                rate = candidate
        if self.done >= self.total:
            eta = "0s"
        elif rate:
            eta = f"{(self.total - self.done) / rate:.0f}s"
        else:
            eta = "--"
        pct = (100.0 * self.done / self.total) if self.total else 100.0
        parts = [
            f"[{self.label}] {self.done}/{self.total} points ({pct:.0f}%)",
            f"{rate:.1f} pts/s" if rate is not None else "-- pts/s",
            f"ETA {eta}",
        ]
        if self.quarantined:
            parts.append(f"quarantined {self.quarantined}")
        return "  ".join(parts)

    def _paint(self, now: float) -> None:
        self._last_paint = now
        self.stream.write("\r\x1b[K" + self.line(now))
        self.stream.flush()
        self._painted = True

    def finish(self) -> None:
        """Final repaint plus the newline that releases the terminal line."""
        if self.total:
            self._paint(time.perf_counter())
        if self._painted:
            self.stream.write("\n")
            self.stream.flush()
