"""``repro.obs`` -- the unified tracing + metrics plane.

Stdlib-only observability threaded through every layer of the stack:

* :mod:`repro.obs.trace` -- context-manager spans with cross-process
  trace propagation (service request -> single-flight entry -> engine
  grid -> shard task -> pool worker) sunk to a JSONL file per campaign.
* :mod:`repro.obs.metrics` -- a labelled counter/gauge/histogram
  registry behind ``Engine.stats()`` / ``/stats`` compatibility shims,
  rendered as Prometheus text by the service's ``/metrics`` endpoint.
* :mod:`repro.obs.summarize` -- per-phase time breakdown, top-N slowest
  points and the cross-process critical path of a recorded campaign
  (``repro trace summarize``).
* :mod:`repro.obs.progress` -- the ``repro run --progress`` live line.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    GLOBAL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_registries,
)
from .progress import ProgressLine
from .summarize import critical_path, summarize, summarize_file
from .trace import NULL_SPAN, Span, TraceContext, Tracer, read_trace

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "GLOBAL_REGISTRY",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "ProgressLine",
    "Span",
    "TraceContext",
    "Tracer",
    "critical_path",
    "read_trace",
    "render_registries",
    "summarize",
    "summarize_file",
]
