"""Trace-file analytics: phase breakdown, slowest points, critical path.

Works on the JSONL records written by :class:`repro.obs.trace.Tracer` --
including absorbed pool-worker spans, so the breakdown covers every
process that touched the campaign.  The ``repro trace summarize`` CLI and
``repro.analysis.report.format_trace_summary`` render the result.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from .trace import read_trace

#: Span-name -> phase label.  ``engine.run`` spans report their ``kind``
#: attr instead (build / analyze / simulate / ...), so the breakdown
#: matches the pipeline's own vocabulary.
PHASE_BY_NAME: Dict[str, str] = {
    "service.request": "request",
    "service.queue": "queue",
    "service.entry": "entry",
    "service.batch": "batch",
    "engine.iter_grid": "grid",
    "engine.shard": "shard",
    "engine.build": "build",
    "store.put": "store-put",
    "worker.point": "worker-point",
}

#: Spans that represent one unit of campaign work -- the candidates for
#: the "slowest points" table.
POINT_SPAN_NAMES = ("worker.point", "engine.run")


def phase_of(record: Mapping[str, object]) -> str:
    name = str(record.get("name", ""))
    if name == "engine.run":
        attrs = record.get("attrs")
        if isinstance(attrs, Mapping) and "kind" in attrs:
            return str(attrs["kind"])
    return PHASE_BY_NAME.get(name, name)


def _end_of(record: Mapping[str, object]) -> float:
    ts = float(record.get("ts") or 0.0)
    dur = record.get("dur_ms")
    return ts + (float(dur) / 1000.0 if dur is not None else 0.0)


def critical_path(
    records: Sequence[Mapping[str, object]],
) -> List[Dict[str, object]]:
    """Root -> leaf chain through the latest-finishing span.

    The span with the maximum end time is the one that determined the
    campaign's makespan; walking its parent links back to the root is the
    (approximate) critical path -- across process boundaries, since
    worker records carry the parent ids of the shard spans that shipped
    them.
    """
    if not records:
        return []
    by_id = {str(r.get("span")): r for r in records if r.get("span")}
    leaf = max(records, key=_end_of)
    chain: List[Mapping[str, object]] = []
    seen: set = set()
    node: Optional[Mapping[str, object]] = leaf
    while node is not None and id(node) not in seen:
        seen.add(id(node))
        chain.append(node)
        parent = node.get("parent")
        node = by_id.get(str(parent)) if parent else None
    chain.reverse()
    return [
        {
            "name": str(node.get("name", "")),
            "phase": phase_of(node),
            "dur_ms": node.get("dur_ms"),
            "pid": node.get("pid"),
            "span": node.get("span"),
            "attrs": dict(node.get("attrs") or {}),
        }
        for node in chain
    ]


def summarize(
    records: Sequence[Mapping[str, object]], top: int = 10
) -> Dict[str, object]:
    """The trace digest: phases, slowest points, critical path, wall span."""
    phases: Dict[str, Dict[str, float]] = {}
    for record in records:
        dur = record.get("dur_ms")
        if dur is None:
            continue
        bucket = phases.setdefault(
            phase_of(record), {"count": 0, "total_ms": 0.0, "max_ms": 0.0}
        )
        bucket["count"] += 1
        bucket["total_ms"] += float(dur)
        bucket["max_ms"] = max(bucket["max_ms"], float(dur))
    for bucket in phases.values():
        bucket["mean_ms"] = bucket["total_ms"] / bucket["count"]

    points = [
        r for r in records
        if r.get("name") in POINT_SPAN_NAMES and r.get("dur_ms") is not None
    ] or [r for r in records if r.get("dur_ms") is not None]
    slowest = [
        {
            "name": str(r.get("name", "")),
            "phase": phase_of(r),
            "dur_ms": float(r["dur_ms"]),
            "pid": r.get("pid"),
            "attrs": dict(r.get("attrs") or {}),
        }
        for r in sorted(points, key=lambda r: float(r["dur_ms"]), reverse=True)[:top]
    ]

    starts = [float(r.get("ts") or 0.0) for r in records if r.get("ts")]
    wall_ms = (max(_end_of(r) for r in records) - min(starts)) * 1000.0 if starts else 0.0
    return {
        "spans": len(records),
        "traces": len({r.get("trace") for r in records}),
        "processes": len({r.get("pid") for r in records}),
        "wall_ms": wall_ms,
        "phases": dict(sorted(phases.items(), key=lambda kv: -kv[1]["total_ms"])),
        "slowest": slowest,
        "critical_path": critical_path(records),
    }


def summarize_file(path: str, top: int = 10) -> Dict[str, object]:
    return summarize(read_trace(path), top=top)
