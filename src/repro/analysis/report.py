"""Full-report generation: one Markdown document covering the whole model.

:func:`full_report` regenerates the paper's tables, summarises every attack
graph (its authorization / access / send nodes and missing security
dependencies), and records the defense-evaluation matrix.  It is what the
``repro report`` CLI command prints, and it gives downstream users a single
artifact to diff when they extend the catalog.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

from ..attacks import ALL_VARIANTS, AttackVariant, variants
from ..defenses import ALL_DEFENSES, Defense
from .tables import defense_strategy_table, format_table, table1, table2, table3

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine import Engine, Result


def _attack_section_for_key(key: str) -> str:
    """Module-level shard worker: render one attack section by registry key.

    Picklable by reference, so :func:`full_report` can fan the per-variant
    graph builds out over :meth:`Engine.map`.
    """
    return attack_section(ALL_VARIANTS[key])


def attack_section(variant: AttackVariant) -> str:
    """A Markdown section describing one attack variant and its graph."""
    graph = variant.build_graph()
    vulnerabilities = graph.find_vulnerabilities()
    lines = [
        f"### {variant.name}",
        "",
        f"* key: `{variant.key}`",
        f"* CVE: {variant.cve or 'N/A'}",
        f"* impact: {variant.impact}",
        f"* category: {variant.category.value}"
        + (" (intra-instruction micro-ops)" if variant.is_meltdown_type else ""),
        f"* authorization: {variant.authorization}",
        f"* illegal access: {variant.illegal_access}",
        f"* secret source: {variant.secret_source.value}",
        f"* speculation trigger: {variant.delay_mechanism.value}",
        f"* graph: {len(graph)} vertices, {len(graph.edges)} edges, "
        f"{len(graph.speculative_window)} in the speculative window",
        "* missing security dependencies:",
    ]
    lines.extend(f"  * {vulnerability.dependency}" for vulnerability in vulnerabilities)
    return "\n".join(lines)


def window_ablation_section(result: "Result") -> str:
    """Render an ``Engine.ablate_window`` envelope as text tables.

    One row per (attack, ROB/RS point, port configuration) with the measured
    window length and the transmit/squash race, followed by the
    functional-unit contention channel's occupancy-delta transmissions under
    each port configuration.
    """
    rows = [
        (
            row["attack"],
            row["rob_size"],
            row["rs_entries"],
            row["ports"],
            row["window_cycles"] if row["window_cycles"] is not None else "-",
            row["transmit_cycle"] if row["transmit_cycle"] is not None else "-",
            row["squash_cycle"] if row["squash_cycle"] is not None else "-",
            "LEAKS" if row["transmit_beats_squash"] else "safe",
            row["port_stall_cycles"],
            row["cdb_stall_cycles"],
        )
        for row in result.data["rows"]
    ]
    sections = [
        format_table(
            ("attack", "rob", "rs", "ports", "window", "transmit", "squash",
             "race", "port-stall", "cdb-stall"),
            rows,
        ),
        "",
        "FU-contention covert channel (occupancy delta per port config):",
        format_table(
            ("ports", "sent", "recovered", "cycle delta", "verdict"),
            [
                (
                    row["ports"],
                    row["value"],
                    row["recovered"] if row["recovered"] is not None else "-",
                    row["cycle_delta"],
                    "TRANSMITS" if row["detected"] else "no signal",
                )
                for row in result.data["contention_channel"]
            ],
        ),
    ]
    return "\n".join(sections)


def simulate_section(result: "Result") -> str:
    """Render a single ``simulate`` envelope as the CLI's race narrative."""
    data = result.data
    lines = [
        f"attack:    {data['attack']} (scenario {data['scenario']})",
        f"defenses:  {', '.join(data['defenses']) or '(none)'}",
        f"cycles:    {data['cycles']} ({data['windows']} speculation window(s))",
    ]
    transmit = data["transmit_cycle"]
    squash = data["squash_cycle"]
    if transmit is None:
        lines.append("race:      no covert transmit issued -> no leak")
    else:
        verdict = (
            "TRANSMIT WINS (leak)"
            if data["transmit_beats_squash"]
            else "squash wins (no leak)"
        )
        lines.append(f"race:      transmit @{transmit} vs squash @{squash} -> {verdict}")
    if "tsg_leaks" in data:
        lines.append(
            f"theorem 1: TSG says {'leaks' if data['tsg_leaks'] else 'safe'} "
            f"-> {'agrees' if data['theorem1_agrees'] else 'DISAGREES'}"
        )
    trace = getattr(result.payload, "timing", None)
    if trace is not None:
        lines.append("key events:")
        lines.extend(
            f"  cycle {event.cycle:>5}: {event.kind:<12} (op {event.seq}) {event.detail}"
            for event in trace.key_events()
        )
    return "\n".join(lines)


def simulate_sweep_section(result: "Result") -> str:
    """Render a ``simulate_sweep`` envelope as the (attack x defense) table."""
    rows = [
        (
            row["attack"],
            ",".join(row["defenses"]) or "(none)",
            "LEAKS" if row["transmit_beats_squash"] else "defended",
            row["transmit_cycle"] if row["transmit_cycle"] is not None else "-",
            row["squash_cycle"] if row["squash_cycle"] is not None else "-",
        )
        for row in result.data["rows"]
    ]
    return format_table(("attack", "defenses", "race", "transmit", "squash"), rows)


def ablation_section(result: "Result") -> str:
    """Render an ``ablation`` envelope as the defense/strategy/outcome table."""
    rows = [
        (row["defense"], row["strategy"], "LEAKS" if row["leaked"] else "defeated")
        for row in result.data["rows"]
    ]
    return format_table(("defense", "strategy", "outcome"), rows)


def exploit_section(result: "Result") -> str:
    """Render an ``exploit`` (single or suite) envelope."""
    data = result.data
    rows = data.get("rows", [data])
    table = format_table(
        ("attack", "secret", "recovered", "verdict"),
        [
            (
                row["attack"],
                f"{row['secret']:#x}",
                f"{row['recovered']:#x}" if row["recovered"] is not None else "nothing",
                "LEAKED" if row["success"] else "no leak",
            )
            for row in rows
        ],
    )
    if "leaked" in data:
        return f"{table}\n{data['leaked']}/{data['exploits']} exploits leaked"
    return table


def _grid_row_verdict(row: Dict[str, object]) -> str:
    if row.get("data", {}).get("quarantined"):
        return "QUARANTINED"
    return "yes" if row["ok"] else "NO"


def grid_section(result: "Result") -> str:
    """Render a generic ``<kind>_grid`` envelope: one verdict row per point.

    Points quarantined by the failure policy (``kind="error"`` envelopes)
    are flagged in place and summarized in the footer.
    """
    data = result.data
    table = format_table(
        ("point", "subject", "ok"),
        [
            (index, row["subject"], _grid_row_verdict(row))
            for index, row in enumerate(data["rows"])
        ],
    )
    footer = (
        f"{data['ok_points']}/{data['points']} points ok "
        f"(kind {data['kind']})"
    )
    if data.get("quarantined"):
        footer += (
            f"; {data['quarantined']} quarantined after repeated failures "
            "(re-run with --resume to retry them)"
        )
    return f"{table}\n{footer}"


def fuzz_point_section(result: "Result") -> str:
    """Render one ``fuzz_point`` envelope: both oracle verdicts side by side."""
    data = result.data
    tsg = "leaks" if data["tsg_leaks"] else "safe"
    timing = "leaks" if data["transmit_beats_squash"] else "safe"
    lines = [
        f"### fuzz point {data['seed']}/{data['index']}",
        "",
        f"* shape: {data['source']} delay={data['delay']} "
        f"channel={data['channel']} fence={data['fence']}",
        f"* program: {data['instructions']} instructions, "
        f"sha {str(data['sha'])[:12]}",
        f"* TSG oracle: {tsg}",
        f"* timing oracle: {timing} (transmit {data['transmit_cycle']}, "
        f"squash {data['squash_cycle']})",
        f"* verdict: {'AGREE' if data['agrees'] else 'DISAGREE'}",
    ]
    if data.get("inject"):
        lines.append(f"* injected fault: {data['inject']}")
    return "\n".join(lines)


def fuzz_campaign_section(result: "Result") -> str:
    """Render a ``fuzz_campaign`` envelope: coverage, verdict tallies and
    every (shrunk) oracle disagreement."""
    data = result.data
    table = format_table(
        ("bucket", "points"),
        [(bucket, count) for bucket, count in data["coverage"].items()],
    )
    footer = (
        f"seed {data['seed']}: {data['executed']}/{data['generated']} points "
        f"executed across {data['buckets']} buckets -- "
        f"{data['agreed']} agreed, {data['disagreed']} disagreed, "
        f"{data['quarantined']} quarantined"
    )
    if data.get("points_per_second"):
        footer += f" ({data['points_per_second']:.0f} points/s)"
    if data.get("budget_exhausted"):
        footer += (
            f"; budget of {data['budget']}s exhausted -- re-run with "
            "--resume to finish the remaining points"
        )
    lines = [table, footer]
    for row in data["disagreements"]:
        lines.append("")
        lines.append(
            f"DISAGREEMENT at point {row['seed']}/{row['index']}: "
            f"{row['source']} delay={row['delay']} channel={row['channel']} "
            f"fence={row['fence']} -- TSG says "
            f"{'leaks' if row['tsg_leaks'] else 'safe'}, timing says "
            f"{'leaks' if row['transmit_beats_squash'] else 'safe'}"
        )
        shrunk = row.get("shrunk")
        if shrunk:
            shape = shrunk["shape"]
            lines.append(
                f"  shrunk to {shrunk['instructions']} instructions "
                f"({shape['source']} delay={shape['delay']} "
                f"channel={shape['channel']} fence={shape['fence']}, "
                f"sha {str(shrunk['sha'])[:12]}):"
            )
            lines.extend(
                f"    {line}" for line in str(shrunk["listing"]).splitlines()
            )
    return "\n".join(lines)


def error_section(result: "Result") -> str:
    """Render a quarantined point's ``error`` envelope."""
    data = result.data
    return (
        f"ERROR {result.subject}: {data['error']}: {data['message']} "
        f"(quarantined after {data['attempts']} attempts)"
    )


def render_result(result: "Result", kind: Optional[str] = None) -> str:
    """Render any engine :class:`~repro.engine.Result` for a terminal.

    ``kind`` is the *spec* kind when known (the envelope's ``result.kind``
    collapses some spec kinds -- e.g. both ``simulate`` and
    ``simulate_sweep`` produce ``simulate`` envelopes); falls back to a JSON
    dump for shapes without a dedicated renderer.
    """
    from ..uarch.timing.validate import validation_report

    kind = kind or result.kind
    if kind.endswith("_grid"):
        return grid_section(result)
    if kind == "error":
        return error_section(result)
    if kind == "window_ablation":
        return window_ablation_section(result)
    if kind == "fuzz_point":
        return fuzz_point_section(result)
    if kind == "fuzz_campaign":
        return fuzz_campaign_section(result)
    if kind == "validate_timing" or result.subject == "theorem1-validation":
        if result.payload is not None:
            return validation_report(result.payload)
        return result.to_json()
    if kind == "simulate_sweep" or (kind == "simulate" and "runs" in result.data):
        return simulate_sweep_section(result)
    if kind == "simulate_batch":
        # Batch rows carry the same fields as sweep rows -- one table.
        return simulate_sweep_section(result)
    if kind == "simulate":
        return simulate_section(result)
    if kind == "ablation":
        return ablation_section(result)
    if kind in ("exploit", "exploit_suite"):
        return exploit_section(result)
    if kind == "analyze" and result.payload is not None:
        return result.payload.summary()
    if kind == "patch" and result.payload is not None:
        return f"{result.payload.summary()}\n\n{result.payload.patched.listing()}"
    if kind in ("matrix", "evaluate") and "rows" in result.data:
        return format_table(
            ("defense", "attack", "strategy", "verdict"),
            [
                (
                    row["defense"],
                    row["attack"],
                    row["strategy"],
                    "-" if not row["applicable"]
                    else ("defeats" if row["effective"] else "leaks"),
                )
                for row in result.data["rows"]
            ],
        )
    if kind == "synthesize":
        rows = result.data["rows"]
        table = format_table(
            ("source", "delay", "channel", "published", "leaks"),
            [
                (
                    row["source"],
                    row["delay"],
                    row["channel"],
                    "yes" if row["published"] else "novel",
                    "LEAKS" if row["leaks"] else "safe",
                )
                for row in rows
            ],
        )
        data = result.data
        return (
            f"{table}\n{data['combinations']} combinations, "
            f"{data['published']} published, {data['novel']} novel, "
            f"{data['leaking']} leaking"
        )
    return result.to_json()


def service_response_summary(envelope: Mapping[str, object]) -> str:
    """Human lines for one analysis-service response envelope.

    The envelope's ``result`` field is a plain ``Result.to_dict()`` dict;
    rebuilding a (payload-less) :class:`~repro.engine.Result` around it
    reuses every per-kind renderer above, so ``repro request`` output
    matches what the same spec prints locally -- prefixed with the
    service-side provenance (request id, hit source, latencies).
    """
    from ..engine import Result

    spec = envelope.get("spec") or {}
    latency = envelope.get("latency_ms") or {}
    head = (
        f"request {envelope.get('request_id')}: {spec.get('kind', '?')} "
        f"[{envelope.get('hit', '?')}] "
        f"queue {latency.get('queue', 0):.1f} ms + "
        f"compute {latency.get('compute', 0):.1f} ms = "
        f"total {latency.get('total', 0):.1f} ms"
    )
    raw = envelope.get("result")
    if not isinstance(raw, Mapping):
        return head
    result = Result(
        kind=str(raw.get("kind", "?")),
        subject=str(raw.get("subject", "?")),
        ok=bool(raw.get("ok")),
        cache=str(raw.get("cache", "none")),
        data=dict(raw.get("data") or {}),
    )
    return f"{head}\n{render_result(result, spec.get('kind'))}"


def format_trace_summary(summary: Mapping[str, object]) -> str:
    """Terminal rendering of :func:`repro.obs.summarize.summarize`.

    Three blocks: the per-phase latency breakdown (sorted by total time,
    so the most expensive pipeline stage leads), the slowest individual
    points, and the critical path -- the parent chain behind the span that
    finished last, i.e. what actually determined the campaign's makespan.
    """
    lines = [
        f"{summary['spans']} spans, {summary['traces']} trace(s), "
        f"{summary['processes']} process(es), "
        f"wall {float(summary['wall_ms']):.1f} ms",
        "",
        "Phase breakdown",
        format_table(
            ("phase", "count", "total ms", "mean ms", "max ms"),
            [
                (
                    phase,
                    int(bucket["count"]),
                    f"{bucket['total_ms']:.2f}",
                    f"{bucket['mean_ms']:.2f}",
                    f"{bucket['max_ms']:.2f}",
                )
                for phase, bucket in summary["phases"].items()
            ],
        ),
    ]
    slowest = summary.get("slowest") or []
    if slowest:
        lines.extend(
            [
                "",
                "Slowest spans",
                format_table(
                    ("phase", "dur ms", "pid", "detail"),
                    [
                        (
                            entry["phase"],
                            f"{entry['dur_ms']:.2f}",
                            entry.get("pid", "?"),
                            ", ".join(
                                f"{name}={value}"
                                for name, value in sorted(
                                    (entry.get("attrs") or {}).items()
                                )
                            ) or "-",
                        )
                        for entry in slowest
                    ],
                ),
            ]
        )
    path = summary.get("critical_path") or []
    if path:
        lines.extend(["", "Critical path (root -> latest-finishing span)"])
        for depth, node in enumerate(path):
            dur = node.get("dur_ms")
            timing = f"{float(dur):.2f} ms" if dur is not None else "?"
            detail = ", ".join(
                f"{name}={value}"
                for name, value in sorted((node.get("attrs") or {}).items())
            )
            lines.append(
                "  " * depth
                + f"{node['phase']} ({node['name']}) {timing}"
                + (f"  [{detail}]" if detail else "")
                + f"  pid {node.get('pid', '?')}"
            )
    return "\n".join(lines)


def defense_matrix_section(
    defenses: Optional[Sequence[Defense]] = None,
    attacks: Optional[Sequence[AttackVariant]] = None,
    *,
    engine: Optional["Engine"] = None,
    parallel: Optional[int] = None,
) -> str:
    """A Markdown table of the defense x attack evaluation.

    Rendered from the engine's :class:`~repro.engine.Result` envelope; pass
    ``parallel`` to shard the matrix over the engine's process pool.
    """
    from ..engine import default_engine

    session = engine if engine is not None else default_engine()
    chosen_defenses = list(defenses) if defenses is not None else list(ALL_DEFENSES)
    chosen_attacks = list(attacks) if attacks is not None else variants()
    result = session.evaluate_matrix(chosen_defenses, chosen_attacks, parallel)
    verdict = {(row["defense"], row["attack"]): row for row in result.data["rows"]}
    headers = ["Defense"] + [attack.key for attack in chosen_attacks]
    rows: List[List[str]] = []
    for defense in chosen_defenses:
        row = [defense.name]
        for attack in chosen_attacks:
            cell = verdict[(defense.key, attack.key)]
            if not cell["applicable"]:
                row.append("-")
            elif cell["effective"]:
                row.append("defeats")
            else:
                row.append("leaks")
        rows.append(row)
    return format_table(headers, rows)


def full_report(
    include_matrix: bool = True,
    *,
    engine: Optional["Engine"] = None,
    parallel: Optional[int] = None,
) -> str:
    """The complete Markdown report.

    The per-attack graph sections and the defense matrix both run on the
    engine's execution plane; pass ``parallel`` to shard them over the
    session's process pool (output is byte-identical to a serial run).
    """
    from ..engine import default_engine

    session = engine if engine is not None else default_engine()
    sections = [
        "# Speculative execution attack-graph model — full report",
        "",
        "## Table I — speculative attacks and their variants",
        "",
        "```",
        table1(),
        "```",
        "",
        "## Table II — industrial defenses",
        "",
        "```",
        table2(),
        "```",
        "",
        "## Table III — authorization and illegal-access nodes",
        "",
        "```",
        table3(),
        "```",
        "",
        "## Defense strategy mapping (industry + academia)",
        "",
        "```",
        defense_strategy_table(),
        "```",
        "",
        "## Attack graphs",
        "",
    ]
    for section in session.map(
        _attack_section_for_key, list(ALL_VARIANTS), parallel=parallel
    ):
        sections.append(section)
        sections.append("")
    if include_matrix:
        sections.extend(
            [
                "## Defense x attack evaluation",
                "",
                "```",
                defense_matrix_section(engine=session, parallel=parallel),
                "```",
                "",
            ]
        )
    return "\n".join(sections)
