"""Rendering of attack graphs: ASCII summaries and Graphviz DOT."""

from __future__ import annotations

from typing import List

from ..core.attack_graph import AttackGraph
from ..core.nodes import OperationType

_TYPE_MARKERS = {
    OperationType.SETUP: "[setup]",
    OperationType.AUTHORIZATION: "[authorization]",
    OperationType.RESOLUTION: "[authorization resolved]",
    OperationType.SECRET_ACCESS: "[secret access]",
    OperationType.USE: "[use]",
    OperationType.SEND: "[send]",
    OperationType.RECEIVE: "[receive]",
    OperationType.SQUASH_OR_COMMIT: "[squash/commit]",
    OperationType.OTHER: "",
}


def ascii_graph(graph: AttackGraph) -> str:
    """A topologically ordered ASCII rendering of an attack graph."""
    order = graph.topological_order()
    position = {name: index for index, name in enumerate(order)}
    lines: List[str] = [f"Attack graph: {graph.name}"]
    for name in order:
        operation = graph.operation(name)
        marker = _TYPE_MARKERS.get(operation.op_type, "")
        spec = " (speculative)" if operation.speculative else ""
        lines.append(f"  {position[name]:2d}. {name} {marker}{spec}".rstrip())
        for dep in graph.edges:
            if dep.target == name:
                lines.append(f"        <- {dep.source}  [{dep.kind.value}]")
    return "\n".join(lines)


def dot_graph(graph: AttackGraph) -> str:
    """Graphviz DOT rendering (delegates to the TSG exporter)."""
    return graph.to_dot()


def race_report(graph: AttackGraph) -> str:
    """A report of all races and missing security dependencies in a graph."""
    lines = [f"Race report for {graph.name}"]
    races = graph.find_races()
    lines.append(f"  total racing pairs: {len(races)}")
    vulnerabilities = graph.find_vulnerabilities()
    if vulnerabilities:
        lines.append("  missing security dependencies:")
        lines.extend(f"    - {vulnerability.dependency}" for vulnerability in vulnerabilities)
    else:
        lines.append("  no missing security dependencies (attack defeated)")
    return "\n".join(lines)
