"""Reporting: regenerate the paper's tables and render attack graphs."""

from .render import ascii_graph, dot_graph, race_report
from .report import attack_section, defense_matrix_section, full_report
from .tables import (
    classification_table,
    defense_strategy_table,
    format_table,
    table1,
    table2,
    table3,
)

__all__ = [
    "ascii_graph",
    "attack_section",
    "classification_table",
    "defense_matrix_section",
    "defense_strategy_table",
    "dot_graph",
    "format_table",
    "full_report",
    "race_report",
    "table1",
    "table2",
    "table3",
]
