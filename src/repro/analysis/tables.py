"""Regeneration of the paper's tables from the attack and defense catalogs."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..attacks import registry
from ..defenses import ALL_DEFENSES, INDUSTRY_DEFENSES, DefenseStrategy


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a simple fixed-width text table."""
    columns = len(headers)
    widths = [len(str(headers[i])) for i in range(columns)]
    for row in rows:
        for i in range(columns):
            widths[i] = max(widths[i], len(str(row[i])))
    def render_row(row: Sequence[str]) -> str:
        return " | ".join(str(row[i]).ljust(widths[i]) for i in range(columns))
    separator = "-+-".join("-" * width for width in widths)
    lines = [render_row(headers), separator]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def table1() -> str:
    """Table I: speculative attacks and their variants (attack, CVE, impact)."""
    return format_table(
        ("Attack", "CVE", "Impact"),
        registry.table1_rows(),
    )


def table2() -> str:
    """Table II: industrial defenses against speculative attacks."""
    rows = [
        (defense.table2_category, _strategy_label(defense.strategy), defense.name)
        for defense in INDUSTRY_DEFENSES
    ]
    return format_table(("Attack", "Defense strategy", "Defense"), rows)


def table3() -> str:
    """Table III: authorization and illegal-access nodes of every attack variant."""
    return format_table(
        ("Attack", "Authorization", "Illegal Access"),
        registry.table3_rows(),
    )


def _strategy_label(strategy: DefenseStrategy) -> str:
    return f"S{strategy.figure8_number}: {strategy.value}"


def defense_strategy_table() -> str:
    """All catalogued defenses (industry + academia) with their strategy mapping.

    Reproduces the paper's claim that every proposed defense falls under one
    of the four strategies (Section V-B / insight 3).
    """
    rows: List[Tuple[str, str, str]] = [
        (defense.name, defense.origin.value, _strategy_label(defense.strategy))
        for defense in ALL_DEFENSES
    ]
    return format_table(("Defense", "Origin", "Strategy"), rows)


def classification_table() -> str:
    """Spectre-type vs Meltdown-type classification of every variant (insight 6)."""
    rows = [
        (
            variant.name,
            variant.category.value,
            "intra-instruction micro-ops" if variant.is_meltdown_type else "inter-instruction",
        )
        for variant in registry.variants()
    ]
    return format_table(("Attack", "Category", "Graph granularity"), rows)
