"""Command-line interface over the :class:`repro.engine.Engine` session API.

Every analysis command is a thin veneer over one engine session: programs
are analysed through the content-addressed artifact cache (so re-analysing
an unchanged file is a cache hit), the defense matrix and attack-space
sweeps run on the engine's shardable execution plane, and the ``--json``
flags emit the engine's uniform :class:`~repro.engine.Result` envelope for
scripting pipelines.

Subcommands::

    repro tables                       # regenerate Tables I, II, III
    repro attacks                      # list the attack catalog
    repro attack spectre_v1            # describe one attack graph
    repro defenses                     # list the defense catalog
    repro evaluate lfence spectre_v1   # does a defense defeat an attack?
    repro evaluate --json lfence ...   # ... as a JSON Result envelope
    repro analyze victim.s             # run the Figure 9 tool on a program
    repro analyze --json victim.s      # ... as a JSON Result envelope
    repro patch victim.s [--json]      # analyze + insert fences
    repro exploit spectre_v1           # run an exploit on the simulator
    repro ablation meltdown [--json]   # defense ablation on the simulator
    repro simulate spectre_v1          # cycle-accurate timing run (OoO core)
    repro simulate --sweep             # sharded (attack x defense) timing grid
    repro simulate --validate          # Theorem 1: timing race vs TSG verdict
    repro simulate --validate --contended   # ... with bounded FU ports + CDB
    repro simulate --ablate-window     # ROB/RS/port window-length ablation
    repro report                       # full Markdown report
    repro perf [--check] [--full]      # core + engine + timing perf -> BENCH_core.json

Everything the CLI prints can be reproduced programmatically:
``Engine().analyze(program)`` / ``.evaluate(defense, variant)`` /
``.synthesize()`` / ``.run_exploits()`` return the same envelopes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from . import analysis
from .analysis.report import full_report
from .attacks import ALL_VARIANTS, get as get_attack
from .defenses import ALL_DEFENSES, get as get_defense
from .engine import default_engine
from .exploits import EXPLOITS
from .isa import assemble
from .uarch import SimDefense, UarchConfig


def _cmd_tables(_: argparse.Namespace) -> int:
    print("Table I -- speculative attacks and their variants")
    print(analysis.table1())
    print("\nTable II -- industrial defenses")
    print(analysis.table2())
    print("\nTable III -- authorization and illegal-access nodes")
    print(analysis.table3())
    return 0


def _cmd_attacks(_: argparse.Namespace) -> int:
    rows = [
        (variant.key, variant.name, variant.cve or "N/A", variant.category.value)
        for variant in ALL_VARIANTS.values()
    ]
    print(analysis.format_table(("key", "attack", "CVE", "category"), rows))
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    variant = get_attack(args.key)
    graph = variant.build_graph()
    print(graph.describe())
    if args.dot:
        print()
        print(analysis.dot_graph(graph))
    else:
        print()
        print(analysis.ascii_graph(graph))
    return 0


def _cmd_defenses(_: argparse.Namespace) -> int:
    print(analysis.defense_strategy_table())
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    defense = get_defense(args.defense)
    variant = get_attack(args.attack)
    result = default_engine().evaluate(defense, variant)
    if args.json:
        print(result.to_json())
        return 0 if result.ok else 1
    evaluation = result.payload
    print(f"defense:   {defense.name} [{defense.strategy.value}]")
    print(f"attack:    {variant.name}")
    print(f"applicable: {evaluation.applicable}")
    print(f"leaks before: {evaluation.leaked_before}, leaks after: {evaluation.leaked_after}")
    print(f"verdict:   {'defeats the attack' if evaluation.effective else 'does NOT defeat the attack'}")
    if evaluation.notes:
        print(f"notes:     {evaluation.notes}")
    return 0 if evaluation.effective else 1


def _load_program(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return assemble(handle.read(), name=path)


def _cmd_analyze(args: argparse.Namespace) -> int:
    result = default_engine().analyze(_load_program(args.program))
    if args.json:
        print(result.to_json())
    else:
        print(result.payload.summary())
    return 0 if result.ok else 1


def _cmd_patch(args: argparse.Namespace) -> int:
    result = default_engine().patch(_load_program(args.program))
    if args.json:
        print(result.to_json())
        return 0 if result.ok else 1
    patch = result.payload
    print(patch.summary())
    print()
    print(patch.patched.listing())
    return 0


def _parse_defenses(names: Optional[Sequence[str]]) -> Optional[List[SimDefense]]:
    if not names:
        return None
    selected = []
    for name in names:
        try:
            selected.append(SimDefense[name.upper()])
        except KeyError:
            known = ", ".join(defense.name.lower() for defense in SimDefense)
            raise SystemExit(f"unknown simulator defense {name!r}; known: {known}")
    return selected


def _cmd_exploit(args: argparse.Namespace) -> int:
    if args.name not in EXPLOITS:
        raise SystemExit(f"unknown exploit {args.name!r}; known: {', '.join(sorted(EXPLOITS))}")
    config = UarchConfig()
    defenses = _parse_defenses(args.defense)
    if defenses:
        config = config.with_defenses(*defenses)
    result = EXPLOITS[args.name](config, args.secret)
    print(result)
    print(f"speculative windows: {result.stats.speculative_windows}, "
          f"transient instructions: {result.stats.transient_instructions}, "
          f"squashes: {result.stats.squashes}, faults: {result.stats.faults}")
    return 0 if not result.success else 1


def _cmd_ablation(args: argparse.Namespace) -> int:
    result = default_engine().ablation(args.name, secret=args.secret)
    if args.json:
        print(result.to_json())
        return 0 if result.ok else 1
    table_rows = [
        (row.defense_name, row.strategy_name, "LEAKS" if row.leaked else "defeated")
        for row in result.payload
    ]
    print(analysis.format_table(("defense", "strategy", "outcome"), table_rows))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    engine = default_engine()
    model = None
    if args.contended:
        from .uarch.timing.scheduler import CONTENDED_MODEL

        model = CONTENDED_MODEL
    if args.validate:
        result = engine.validate_timing(parallel=args.parallel, model=model)
        if args.json:
            print(result.to_json())
        else:
            from .uarch.timing.validate import validation_report

            print(validation_report(result.payload))
        return 0 if result.ok else 1
    if args.ablate_window:
        if args.contended:
            raise SystemExit(
                "--ablate-window already sweeps the port configurations "
                "(unbounded / contended / serialized); drop --contended"
            )
        if args.defense:
            raise SystemExit(
                "--ablate-window measures the undefended window-length "
                "ablation; drop --defense (use --sweep for defense grids)"
            )
        result = engine.ablate_window(
            [args.name] if args.name else None,
            secret=args.secret,
            parallel=args.parallel,
        )
        if args.json:
            print(result.to_json())
        else:
            from .analysis.report import window_ablation_section

            print(window_ablation_section(result))
        return 0
    if args.sweep:
        result = engine.simulate_sweep(
            parallel=args.parallel, secret=args.secret, model=model
        )
        if args.json:
            print(result.to_json())
        else:
            table_rows = [
                (
                    row["attack"],
                    ",".join(row["defenses"]) or "(none)",
                    "LEAKS" if row["transmit_beats_squash"] else "defended",
                    row["transmit_cycle"] if row["transmit_cycle"] is not None else "-",
                    row["squash_cycle"] if row["squash_cycle"] is not None else "-",
                )
                for row in result.data["rows"]
            ]
            print(analysis.format_table(
                ("attack", "defenses", "race", "transmit", "squash"), table_rows
            ))
        return 0
    if not args.name:
        raise SystemExit(
            "simulate needs an attack name (or --sweep / --validate / --ablate-window)"
        )
    defenses = _parse_defenses(args.defense) or ()
    result = engine.simulate(args.name, defenses, secret=args.secret, model=model)
    if args.json:
        print(result.to_json())
        return 0 if result.ok else 1
    data = result.data
    trace = result.payload.timing
    print(f"attack:    {data['attack']} (scenario {data['scenario']})")
    print(f"defenses:  {', '.join(data['defenses']) or '(none)'}")
    print(f"cycles:    {data['cycles']} ({data['windows']} speculation window(s))")
    transmit = data["transmit_cycle"]
    squash = data["squash_cycle"]
    if transmit is None:
        print("race:      no covert transmit issued -> no leak")
    else:
        print(f"race:      transmit @{transmit} vs squash @{squash} "
              f"-> {'TRANSMIT WINS (leak)' if data['transmit_beats_squash'] else 'squash wins (no leak)'}")
    if "tsg_leaks" in data:
        print(f"theorem 1: TSG says {'leaks' if data['tsg_leaks'] else 'safe'} "
              f"-> {'agrees' if data['theorem1_agrees'] else 'DISAGREES'}")
    print("key events:")
    for event in trace.key_events():
        print(f"  cycle {event.cycle:>5}: {event.kind:<12} (op {event.seq}) {event.detail}")
    return 0 if result.ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    text = full_report(include_matrix=not args.no_matrix)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from . import perf

    if args.check:
        return perf.run_check(args.output)
    run = perf.main(output=args.output, quick=args.quick, full=args.full)
    print(f"commit {run['commit']}  ({run['timestamp']})")
    for record in run["results"]:
        print(
            f"  {record['graph']}: all-pairs races "
            f"{record['closure_all_pairs_seconds'] * 1e3:.2f} ms (closure) vs "
            f"{record['bfs_all_pairs_seconds_estimate'] * 1e3:.1f} ms (seed BFS, "
            f"{record['bfs_baseline_mode']}) -> {record['speedup_all_pairs']:.0f}x speedup"
        )
    for line in perf.format_engine_records(run):
        print(f"  {line}")
    print(f"trajectory appended to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Attack-graph models for speculative execution attacks (HPCA 2021 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("tables", help="regenerate Tables I, II and III").set_defaults(
        handler=_cmd_tables
    )
    subparsers.add_parser("attacks", help="list the attack catalog").set_defaults(
        handler=_cmd_attacks
    )

    attack_parser = subparsers.add_parser("attack", help="describe one attack graph")
    attack_parser.add_argument("key", help="attack key, e.g. spectre_v1")
    attack_parser.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    attack_parser.set_defaults(handler=_cmd_attack)

    subparsers.add_parser("defenses", help="list the defense catalog").set_defaults(
        handler=_cmd_defenses
    )

    evaluate_parser = subparsers.add_parser("evaluate", help="evaluate a defense against an attack")
    evaluate_parser.add_argument("defense", help="defense key, e.g. lfence")
    evaluate_parser.add_argument("attack", help="attack key, e.g. spectre_v1")
    evaluate_parser.add_argument("--json", action="store_true",
                                 help="emit the engine Result envelope as JSON")
    evaluate_parser.set_defaults(handler=_cmd_evaluate)

    analyze_parser = subparsers.add_parser("analyze", help="run the Figure 9 tool on a program")
    analyze_parser.add_argument("program", help="path to an assembly file")
    analyze_parser.add_argument("--json", action="store_true",
                                 help="emit the engine Result envelope as JSON")
    analyze_parser.set_defaults(handler=_cmd_analyze)

    patch_parser = subparsers.add_parser("patch", help="analyze a program and insert fences")
    patch_parser.add_argument("program", help="path to an assembly file")
    patch_parser.add_argument("--json", action="store_true",
                              help="emit the engine Result envelope as JSON")
    patch_parser.set_defaults(handler=_cmd_patch)

    exploit_parser = subparsers.add_parser("exploit", help="run an exploit on the simulator")
    exploit_parser.add_argument("name", help=f"one of: {', '.join(sorted(EXPLOITS))}")
    exploit_parser.add_argument("--secret", type=lambda v: int(v, 0), default=0x5A)
    exploit_parser.add_argument(
        "--defense",
        action="append",
        help="simulator defense to enable (may be repeated), e.g. kernel_isolation",
    )
    exploit_parser.set_defaults(handler=_cmd_exploit)

    ablation_parser = subparsers.add_parser("ablation", help="defense ablation for one exploit")
    ablation_parser.add_argument("name", help=f"one of: {', '.join(sorted(EXPLOITS))}")
    ablation_parser.add_argument("--secret", type=lambda v: int(v, 0), default=0x5A)
    ablation_parser.add_argument("--json", action="store_true",
                                 help="emit the engine Result envelope as JSON")
    ablation_parser.set_defaults(handler=_cmd_ablation)

    simulate_parser = subparsers.add_parser(
        "simulate", help="run an attack on the cycle-accurate OoO timing core"
    )
    simulate_parser.add_argument(
        "name", nargs="?", help="attack registry key or exploit name, e.g. spectre_v1"
    )
    simulate_parser.add_argument("--secret", type=lambda v: int(v, 0), default=None)
    simulate_parser.add_argument(
        "--defense",
        action="append",
        help="simulator defense to enable (may be repeated), e.g. kernel_isolation",
    )
    simulate_mode = simulate_parser.add_mutually_exclusive_group()
    simulate_mode.add_argument("--sweep", action="store_true",
                               help="sweep every (attack, defense) combination")
    simulate_mode.add_argument("--validate", action="store_true",
                               help="cross-check Theorem 1 over the attack registry")
    simulate_mode.add_argument("--ablate-window", action="store_true",
                               help="sweep the ROB/RS/port window-length ablation "
                                    "(all attacks, or just the named one)")
    simulate_parser.add_argument("--contended", action="store_true",
                                 help="use the contended timing model "
                                      "(bounded FU ports and CDB width)")
    simulate_parser.add_argument("--parallel", type=int, default=None,
                                 help="shard the sweep/validation/ablation over N workers")
    simulate_parser.add_argument("--json", action="store_true",
                                 help="emit the engine Result envelope as JSON")
    simulate_parser.set_defaults(handler=_cmd_simulate)

    report_parser = subparsers.add_parser("report", help="emit the full Markdown report")
    report_parser.add_argument("--output", "-o", help="write the report to a file")
    report_parser.add_argument("--no-matrix", action="store_true",
                               help="skip the defense x attack matrix (faster)")
    report_parser.set_defaults(handler=_cmd_report)

    perf_parser = subparsers.add_parser(
        "perf", help="run the TSG-core perf suite and append to BENCH_core.json"
    )
    perf_parser.add_argument("--output", "-o", default="BENCH_core.json",
                             help="trajectory file to append to")
    perf_budget = perf_parser.add_mutually_exclusive_group()
    perf_budget.add_argument("--quick", action="store_true",
                             help="smaller baseline budget, single repeat")
    perf_budget.add_argument("--full", action="store_true",
                             help="run the full 500-instruction rescan baseline "
                                  "(the default keeps the 200-instruction run)")
    perf_parser.add_argument("--check", action="store_true",
                             help="check the trajectory against the ROADMAP "
                                  "regression thresholds instead of benchmarking")
    perf_parser.set_defaults(handler=_cmd_perf)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via the console entry point
    sys.exit(main())
