"""Command-line interface over the :class:`repro.engine.Engine` session API.

Every analysis command is a thin veneer over one engine session: programs
are analysed through the content-addressed artifact cache (so re-analysing
an unchanged file is a cache hit), the defense matrix and attack-space
sweeps run on the engine's shardable execution plane, and the ``--json``
flags emit the engine's uniform :class:`~repro.engine.Result` envelope for
scripting pipelines.

Subcommands::

    repro tables                       # regenerate Tables I, II, III
    repro attacks                      # list the attack catalog
    repro attack spectre_v1            # describe one attack graph
    repro defenses                     # list the defense catalog
    repro evaluate lfence spectre_v1   # does a defense defeat an attack?
    repro evaluate --json lfence ...   # ... as a JSON Result envelope
    repro analyze victim.s             # run the Figure 9 tool on a program
    repro analyze --json victim.s      # ... as a JSON Result envelope
    repro patch victim.s [--json]      # analyze + insert fences
    repro exploit spectre_v1           # run an exploit on the simulator
    repro ablation meltdown [--json]   # defense ablation on the simulator
    repro simulate spectre_v1          # cycle-accurate timing run (OoO core)
    repro simulate --sweep             # sharded (attack x defense) timing grid
    repro simulate --validate          # Theorem 1: timing race vs TSG verdict
    repro simulate --validate --contended   # ... with bounded FU ports + CDB
    repro simulate --ablate-window     # ROB/RS/port window-length ablation
    repro run --kind simulate --param attack=spectre_v1   # declarative spec
    repro run --spec plan.json         # spec / grid from a JSON file
    repro run --kind simulate --param attack=spectre_v1 \
              --axis defenses='[["PREVENT_SPECULATIVE_LOADS"],null]'  # a grid
    repro run --spec plan.json --trace t.jsonl --progress  # traced, live ETA
    repro trace summarize t.jsonl      # phase breakdown + critical path
    repro report                       # full Markdown report
    repro perf [--check] [--full]      # core + engine + timing perf -> BENCH_core.json
    repro serve --store disk           # the async analysis service (HTTP)
    repro request --url URL --kind simulate --param attack=spectre_v1
    repro request --url URL --stats    # the server's /stats document
    repro --version                    # package version + short commit

Every engine-backed subcommand accepts ``--store memory|disk|PATH``: the
spec-level artifact store that memoizes whole ``Result`` envelopes by
scenario content hash.  ``--store disk`` persists them under
``~/.cache/repro/`` (override with ``REPRO_CACHE_DIR``), so a second
invocation of the same scenario in a *new process* is served from disk.

Everything the CLI prints can be reproduced programmatically:
``Engine().run(ScenarioSpec(...))`` / ``.run_grid(ScenarioGrid(...))``
return the same envelopes (the named methods ``analyze`` / ``evaluate`` /
``simulate`` / ... survive as deprecated shims over ``run``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from . import analysis, build_info
from .analysis.report import full_report, render_result, service_response_summary
from .attacks import ALL_VARIANTS, get as get_attack
from .defenses import ALL_DEFENSES, get as get_defense
from .engine import Engine, FailurePolicy, default_engine, halt_default_engine
from .exploits import EXPLOITS
from .faults import apply_store_faults, load_fault_plan
from .isa import assemble
from .scenario import (
    KINDS,
    ScenarioGrid,
    ScenarioSpec,
    load as load_scenario,
    resolve_program_params,
)
from .store import open_store
from .uarch import SimDefense, UarchConfig


def _session(args: argparse.Namespace) -> Engine:
    """The engine a subcommand runs on: fresh with a store, else the default."""
    store = open_store(getattr(args, "store", None))
    if store is None:
        return default_engine()
    return Engine(store=store)


def _cmd_tables(_: argparse.Namespace) -> int:
    print("Table I -- speculative attacks and their variants")
    print(analysis.table1())
    print("\nTable II -- industrial defenses")
    print(analysis.table2())
    print("\nTable III -- authorization and illegal-access nodes")
    print(analysis.table3())
    return 0


def _cmd_attacks(_: argparse.Namespace) -> int:
    rows = [
        (variant.key, variant.name, variant.cve or "N/A", variant.category.value)
        for variant in ALL_VARIANTS.values()
    ]
    print(analysis.format_table(("key", "attack", "CVE", "category"), rows))
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    variant = get_attack(args.key)
    graph = variant.build_graph()
    print(graph.describe())
    if args.dot:
        print()
        print(analysis.dot_graph(graph))
    else:
        print()
        print(analysis.ascii_graph(graph))
    return 0


def _cmd_defenses(_: argparse.Namespace) -> int:
    print(analysis.defense_strategy_table())
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    defense = get_defense(args.defense)
    variant = get_attack(args.attack)
    result = _session(args).evaluate(defense, variant)
    if args.json:
        print(result.to_json())
        return 0 if result.ok else 1
    evaluation = result.payload
    print(f"defense:   {defense.name} [{defense.strategy.value}]")
    print(f"attack:    {variant.name}")
    print(f"applicable: {evaluation.applicable}")
    print(f"leaks before: {evaluation.leaked_before}, leaks after: {evaluation.leaked_after}")
    print(f"verdict:   {'defeats the attack' if evaluation.effective else 'does NOT defeat the attack'}")
    if evaluation.notes:
        print(f"notes:     {evaluation.notes}")
    return 0 if evaluation.effective else 1


def _load_program(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return assemble(handle.read(), name=path)


def _cmd_analyze(args: argparse.Namespace) -> int:
    result = _session(args).analyze(_load_program(args.program))
    if args.json:
        print(result.to_json())
    else:
        print(result.payload.summary())
    return 0 if result.ok else 1


def _cmd_patch(args: argparse.Namespace) -> int:
    result = _session(args).patch(_load_program(args.program))
    if args.json:
        print(result.to_json())
        return 0 if result.ok else 1
    patch = result.payload
    print(patch.summary())
    print()
    print(patch.patched.listing())
    return 0


def _parse_defenses(names: Optional[Sequence[str]]) -> Optional[List[SimDefense]]:
    if not names:
        return None
    selected = []
    for name in names:
        try:
            selected.append(SimDefense[name.upper()])
        except KeyError:
            known = ", ".join(defense.name.lower() for defense in SimDefense)
            raise SystemExit(f"unknown simulator defense {name!r}; known: {known}")
    return selected


def _cmd_exploit(args: argparse.Namespace) -> int:
    if args.name not in EXPLOITS:
        raise SystemExit(f"unknown exploit {args.name!r}; known: {', '.join(sorted(EXPLOITS))}")
    config = UarchConfig()
    defenses = _parse_defenses(args.defense)
    if defenses:
        config = config.with_defenses(*defenses)
    result = _session(args).exploit(args.name, config=config, secret=args.secret).payload
    print(result)
    print(f"speculative windows: {result.stats.speculative_windows}, "
          f"transient instructions: {result.stats.transient_instructions}, "
          f"squashes: {result.stats.squashes}, faults: {result.stats.faults}")
    return 0 if not result.success else 1


def _cmd_ablation(args: argparse.Namespace) -> int:
    result = _session(args).ablation(
        args.name, secret=args.secret, parallel=args.parallel
    )
    if args.json:
        print(result.to_json())
        return 0 if result.ok else 1
    table_rows = [
        (row.defense_name, row.strategy_name, "LEAKS" if row.leaked else "defeated")
        for row in result.payload
    ]
    print(analysis.format_table(("defense", "strategy", "outcome"), table_rows))
    return 0


def _simulate_spec(args: argparse.Namespace) -> ScenarioSpec:
    """Migrate the ``simulate`` flag zoo onto one declarative scenario spec."""
    model = "contended" if args.contended else None
    if args.batch:
        if args.defense:
            raise SystemExit(
                "--batch points carry their own defenses; drop --defense"
            )
        try:
            document = json.loads(Path(args.batch).read_text(encoding="utf-8"))
        except OSError as error:
            raise SystemExit(f"cannot read batch file {args.batch!r}: {error}")
        except ValueError as error:
            raise SystemExit(f"batch file {args.batch!r} is not valid JSON: {error}")
        if isinstance(document, dict):
            points = document.get("points")
            secret = document.get("secret", args.secret)
            batch_model = document.get("model", model)
        else:
            points, secret, batch_model = document, args.secret, model
        if not isinstance(points, list) or not points:
            raise SystemExit(
                f"batch file {args.batch!r} must hold a non-empty JSON list of "
                "points (or an object with a 'points' list)"
            )
        return ScenarioSpec(
            "simulate_batch", points=tuple(points), secret=secret, model=batch_model
        )
    if args.validate:
        return ScenarioSpec("validate_timing", model=model)
    if args.ablate_window:
        if args.contended:
            raise SystemExit(
                "--ablate-window already sweeps the port configurations "
                "(unbounded / contended / serialized); drop --contended"
            )
        if args.defense:
            raise SystemExit(
                "--ablate-window measures the undefended window-length "
                "ablation; drop --defense (use --sweep for defense grids)"
            )
        return ScenarioSpec(
            "window_ablation",
            attacks=(args.name,) if args.name else None,
            secret=args.secret,
        )
    if args.sweep:
        return ScenarioSpec("simulate_sweep", secret=args.secret, model=model)
    if not args.name:
        raise SystemExit(
            "simulate needs an attack name (or --sweep / --validate / --ablate-window)"
        )
    defenses = _parse_defenses(args.defense)
    return ScenarioSpec(
        "simulate",
        attack=args.name,
        defenses=tuple(defenses) if defenses else None,
        secret=args.secret,
        model=model,
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    spec = _simulate_spec(args)
    result = _session(args).run(spec, parallel=args.parallel)
    if args.json:
        print(result.to_json())
    else:
        print(render_result(result, spec.kind))
    if spec.kind in ("simulate_sweep", "simulate_batch", "window_ablation"):
        return 0
    return 0 if result.ok else 1


def _parse_value(text: str) -> object:
    """A CLI parameter value: int literal, JSON, ``none``/``null``, or string."""
    lowered = text.strip().lower()
    if lowered in ("none", "null"):
        return None
    try:
        return int(text, 0)
    except ValueError:
        pass
    try:
        return json.loads(text)
    except (ValueError, TypeError):
        return text


def _parse_params(pairs: Optional[Sequence[str]]) -> Dict[str, object]:
    params: Dict[str, object] = {}
    for pair in pairs or ():
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise SystemExit(f"--param needs name=value, got {pair!r}")
        params[name] = _parse_value(value)
    return params


def _parse_axes(pairs: Optional[Sequence[str]]) -> Dict[str, List[object]]:
    axes: Dict[str, List[object]] = {}
    for pair in pairs or ():
        name, sep, text = pair.partition("=")
        if not sep or not name:
            raise SystemExit(f"--axis needs name=v1,v2,..., got {pair!r}")
        parsed = _parse_value(text)
        if isinstance(parsed, list):
            axes[name] = parsed
        elif isinstance(parsed, str):
            # Not valid JSON: a bare comma-separated value list.
            axes[name] = [_parse_value(value) for value in text.split(",")]
        else:
            # One JSON value (a dict, a number, null): a one-element axis --
            # never re-split, its commas are structure, not separators.
            axes[name] = [parsed]
    return axes


def _run_session(args: argparse.Namespace) -> Engine:
    """The (possibly fault-tolerant) engine behind ``repro run``.

    ``--resume`` implies a persistent store (the default disk cache when
    none was selected) -- a resume without durable checkpoints would have
    nothing to resume from.  ``--faults`` threads a deterministic
    fault-injection plan through the engine and (for store-level faults)
    wraps the artifact store; ``--timeout`` / ``--retries`` switch grid
    execution onto the supervised failure-policy plane.
    """
    store = open_store(getattr(args, "store", None))
    if args.resume and store is None:
        store = open_store("disk")
    plan = load_fault_plan(args.faults) if args.faults else None
    if plan is not None:
        store = apply_store_faults(store, plan)
    policy = None
    if args.timeout is not None or args.retries is not None:
        policy = FailurePolicy(
            timeout=args.timeout,
            retries=args.retries if args.retries is not None else 2,
        )
    if store is None and plan is None and policy is None:
        return default_engine()
    return Engine(store=store, policy=policy, faults=plan)


def _cmd_run(args: argparse.Namespace) -> int:
    if args.spec:
        plan = load_scenario(args.spec)
    elif args.kind:
        if args.kind not in KINDS:
            raise SystemExit(
                f"unknown scenario kind {args.kind!r}; known: "
                f"{', '.join(sorted(KINDS))}"
            )
        params = _parse_params(args.param)
        resolve_program_params(params, Path.cwd())
        axes = _parse_axes(args.axis)
        try:
            if axes:
                plan = ScenarioGrid(args.kind, base=params, axes=axes)
            else:
                plan = ScenarioSpec(args.kind, **params)
        except ValueError as exc:
            raise SystemExit(str(exc))
    else:
        raise SystemExit("run needs --spec FILE or --kind KIND")
    try:
        engine = _run_session(args)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"run failed: {exc}")
    tracer = None
    if getattr(args, "trace", None):
        from .obs import Tracer

        try:
            tracer = Tracer(sink=args.trace)
        except OSError as exc:
            raise SystemExit(f"cannot open trace file {args.trace!r}: {exc}")
        engine.tracer = tracer
    progress = None
    if getattr(args, "progress", False) and isinstance(plan, ScenarioGrid):
        from .obs import ProgressLine

        progress = ProgressLine(len(plan))
    try:
        if progress is not None:
            result = engine.run_grid(
                plan, parallel=args.parallel, on_point=progress.update
            )
        else:
            result = engine.run(plan, parallel=args.parallel)
    except KeyboardInterrupt:
        # Completed points are already durable (each one was persisted the
        # moment it finished); kill the pool without joining possibly hung
        # workers and tell the user how to pick the campaign back up.
        if progress is not None:
            progress.finish()
        engine.halt()
        if tracer is not None:
            tracer.close()
        print(
            "interrupted -- completed grid points stay checkpointed in the "
            "artifact store; re-run the same command with --resume to "
            "continue from the last completed point",
            file=sys.stderr,
        )
        return 130
    except (KeyError, TypeError, ValueError) as exc:
        # Parameter decode errors (unknown attack, bogus model name, ...)
        # are user input errors: one clean line, not a traceback.
        if progress is not None:
            progress.finish()
        if tracer is not None:
            tracer.close()
        message = exc.args[0] if exc.args else exc
        raise SystemExit(f"run failed: {message}")
    if progress is not None:
        progress.finish()
    if tracer is not None:
        tracer.close()
        print(
            f"trace: {tracer.emitted} spans written to {args.trace}",
            file=sys.stderr,
        )
    if args.json:
        print(result.to_json())
    else:
        kind = plan.kind if isinstance(plan, ScenarioSpec) else f"{plan.kind}_grid"
        print(render_result(result, kind))
    if args.resume:
        # Campaign accounting on stderr: stdout stays the pristine envelope.
        if isinstance(plan, ScenarioGrid):
            summary = engine.stats()["grid"]
            total = int(result.data.get("points", 0))
            resumed = summary["resumed"]
            print(
                f"resume: {resumed}/{total} points served from checkpoints, "
                f"{total - resumed} recomputed, "
                f"{summary['quarantined']} quarantined",
                file=sys.stderr,
            )
        else:
            state = (
                "served from checkpoint" if result.cache == "warm" else "recomputed"
            )
            print(f"resume: {state}", file=sys.stderr)
    return 0 if result.ok else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """``repro fuzz``: a seeded differential campaign over both oracles."""
    if args.count < 1:
        raise SystemExit("fuzz needs --count >= 1")
    try:
        engine = _run_session(args)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"fuzz failed: {exc}")
    tracer = None
    if getattr(args, "trace", None):
        from .obs import Tracer

        try:
            tracer = Tracer(sink=args.trace)
        except OSError as exc:
            raise SystemExit(f"cannot open trace file {args.trace!r}: {exc}")
        engine.tracer = tracer
    progress = None
    if getattr(args, "progress", False):
        from .obs import ProgressLine

        progress = ProgressLine(args.count)
    try:
        result = engine.run_fuzz_campaign(
            seed=args.seed,
            count=args.count,
            secret=args.secret,
            model="contended" if args.contended else None,
            inject=args.inject,
            budget=args.budget,
            parallel=args.parallel,
            on_point=progress.update if progress is not None else None,
            refresh=args.resume,
        )
    except KeyboardInterrupt:
        # Completed fuzz points are already durable; kill the pool and tell
        # the user how to pick the campaign back up.
        if progress is not None:
            progress.finish()
        engine.halt()
        if tracer is not None:
            tracer.close()
        print(
            "interrupted -- completed fuzz points stay checkpointed in the "
            "artifact store; re-run the same command with --resume to "
            "continue from the last completed point",
            file=sys.stderr,
        )
        return 130
    except (KeyError, TypeError, ValueError) as exc:
        if progress is not None:
            progress.finish()
        if tracer is not None:
            tracer.close()
        message = exc.args[0] if exc.args else exc
        raise SystemExit(f"fuzz failed: {message}")
    if progress is not None:
        progress.finish()
    if tracer is not None:
        tracer.close()
        print(
            f"trace: {tracer.emitted} spans written to {args.trace}",
            file=sys.stderr,
        )
    if args.corpus:
        from .fuzz import FuzzCorpus

        ingested = FuzzCorpus(args.corpus).ingest(result.data)
        print(
            f"corpus: {ingested['written']} disagreement fixture(s) pinned, "
            f"{ingested['novel_buckets']} novel bucket(s) in {args.corpus}",
            file=sys.stderr,
        )
    if args.json:
        print(result.to_json())
    else:
        print(render_result(result, "fuzz_campaign"))
    if args.resume:
        # Campaign accounting on stderr: stdout stays the pristine envelope.
        summary = engine.stats()["grid"]
        total = int(result.data.get("executed", 0))
        resumed = summary["resumed"]
        print(
            f"resume: {resumed}/{total} points served from checkpoints, "
            f"{total - resumed} recomputed, "
            f"{summary['quarantined']} quarantined",
            file=sys.stderr,
        )
    return 0 if result.ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    text = full_report(include_matrix=not args.no_matrix, engine=_session(args))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.server import ServiceConfig, serve
    from .store import open_store

    store = open_store(args.store if args.store is not None else "disk")
    engine = Engine(store=store, parallel=args.parallel)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        batch_size=args.batch_size,
        batch_window=args.batch_window,
        queue_depth=args.queue_depth,
        max_body_bytes=args.max_body,
        parallel=args.parallel,
        trace_path=args.trace,
    )
    try:
        return serve(engine, config)
    finally:
        engine.close()


def _request_payload(args: argparse.Namespace) -> Dict[str, object]:
    if args.spec:
        plan = load_scenario(args.spec)
        if isinstance(plan, ScenarioGrid):
            raise SystemExit(
                "the service accepts point specs, not grids (it batches "
                "points itself); expand the grid client-side or use repro run"
            )
        return plan.to_dict()
    if not args.kind:
        raise SystemExit("request needs --stats, --spec FILE or --kind KIND")
    params = _parse_params(args.param)
    resolve_program_params(params, Path.cwd())
    return {"kind": args.kind, "params": params}


def _cmd_request(args: argparse.Namespace) -> int:
    from .service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        if args.stats:
            print(json.dumps(client.stats(), indent=2, sort_keys=True, default=str))
            return 0
        envelope = client.run(_request_payload(args))
    except ServiceError as exc:
        print(json.dumps(exc.envelope, indent=2, sort_keys=True, default=str),
              file=sys.stderr)
        return 2
    except OSError as exc:
        raise SystemExit(f"cannot reach {args.url}: {exc}")
    if args.json:
        print(json.dumps(envelope, indent=2, sort_keys=True, default=str))
    else:
        print(service_response_summary(envelope))
    return 0 if envelope.get("ok") else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from .analysis.report import format_trace_summary
    from .obs import summarize_file

    try:
        summary = summarize_file(args.file, top=args.top)
    except OSError as exc:
        raise SystemExit(f"cannot read trace file {args.file!r}: {exc}")
    except ValueError as exc:
        raise SystemExit(f"malformed trace file {args.file!r}: {exc}")
    if not summary["spans"]:
        raise SystemExit(f"trace file {args.file!r} holds no spans")
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True, default=str))
    else:
        print(format_trace_summary(summary))
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from . import perf

    if args.check:
        return perf.run_check(args.output, allow_stale=args.allow_stale)
    run = perf.main(output=args.output, quick=args.quick, full=args.full)
    print(f"commit {run['commit']}  ({run['timestamp']})")
    for record in run["results"]:
        print(
            f"  {record['graph']}: all-pairs races "
            f"{record['closure_all_pairs_seconds'] * 1e3:.2f} ms (closure) vs "
            f"{record['bfs_all_pairs_seconds_estimate'] * 1e3:.1f} ms (seed BFS, "
            f"{record['bfs_baseline_mode']}) -> {record['speedup_all_pairs']:.0f}x speedup"
        )
    for line in perf.format_engine_records(run):
        print(f"  {line}")
    print(f"trajectory appended to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Attack-graph models for speculative execution attacks (HPCA 2021 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=build_info(),
        help="print the package version (+ short commit in a git checkout)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # Shared by every engine-backed subcommand: the spec-level artifact store.
    store_parent = argparse.ArgumentParser(add_help=False)
    store_parent.add_argument(
        "--store",
        default=None,
        metavar="KIND",
        help="artifact store for Result envelopes: 'memory', 'disk' "
             "(~/.cache/repro, persistent across processes), or a directory "
             "path",
    )

    subparsers.add_parser("tables", help="regenerate Tables I, II and III").set_defaults(
        handler=_cmd_tables
    )
    subparsers.add_parser("attacks", help="list the attack catalog").set_defaults(
        handler=_cmd_attacks
    )

    attack_parser = subparsers.add_parser("attack", help="describe one attack graph")
    attack_parser.add_argument("key", help="attack key, e.g. spectre_v1")
    attack_parser.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    attack_parser.set_defaults(handler=_cmd_attack)

    subparsers.add_parser("defenses", help="list the defense catalog").set_defaults(
        handler=_cmd_defenses
    )

    evaluate_parser = subparsers.add_parser(
        "evaluate", help="evaluate a defense against an attack",
        parents=[store_parent],
    )
    evaluate_parser.add_argument("defense", help="defense key, e.g. lfence")
    evaluate_parser.add_argument("attack", help="attack key, e.g. spectre_v1")
    evaluate_parser.add_argument("--json", action="store_true",
                                 help="emit the engine Result envelope as JSON")
    evaluate_parser.set_defaults(handler=_cmd_evaluate)

    analyze_parser = subparsers.add_parser(
        "analyze", help="run the Figure 9 tool on a program",
        parents=[store_parent],
    )
    analyze_parser.add_argument("program", help="path to an assembly file")
    analyze_parser.add_argument("--json", action="store_true",
                                 help="emit the engine Result envelope as JSON")
    analyze_parser.set_defaults(handler=_cmd_analyze)

    patch_parser = subparsers.add_parser(
        "patch", help="analyze a program and insert fences",
        parents=[store_parent],
    )
    patch_parser.add_argument("program", help="path to an assembly file")
    patch_parser.add_argument("--json", action="store_true",
                              help="emit the engine Result envelope as JSON")
    patch_parser.set_defaults(handler=_cmd_patch)

    exploit_parser = subparsers.add_parser(
        "exploit", help="run an exploit on the simulator",
        parents=[store_parent],
    )
    exploit_parser.add_argument("name", help=f"one of: {', '.join(sorted(EXPLOITS))}")
    exploit_parser.add_argument("--secret", type=lambda v: int(v, 0), default=0x5A)
    exploit_parser.add_argument(
        "--defense",
        action="append",
        help="simulator defense to enable (may be repeated), e.g. kernel_isolation",
    )
    exploit_parser.set_defaults(handler=_cmd_exploit)

    ablation_parser = subparsers.add_parser(
        "ablation", help="defense ablation for one exploit",
        parents=[store_parent],
    )
    ablation_parser.add_argument("name", help=f"one of: {', '.join(sorted(EXPLOITS))}")
    ablation_parser.add_argument("--secret", type=lambda v: int(v, 0), default=0x5A)
    ablation_parser.add_argument("--parallel", type=int, default=None,
                                 help="shard the per-defense runs over N workers")
    ablation_parser.add_argument("--json", action="store_true",
                                 help="emit the engine Result envelope as JSON")
    ablation_parser.set_defaults(handler=_cmd_ablation)

    simulate_parser = subparsers.add_parser(
        "simulate", help="run an attack on the cycle-accurate OoO timing core",
        parents=[store_parent],
    )
    simulate_parser.add_argument(
        "name", nargs="?", help="attack registry key or exploit name, e.g. spectre_v1"
    )
    simulate_parser.add_argument("--secret", type=lambda v: int(v, 0), default=None)
    simulate_parser.add_argument(
        "--defense",
        action="append",
        help="simulator defense to enable (may be repeated), e.g. kernel_isolation",
    )
    simulate_mode = simulate_parser.add_mutually_exclusive_group()
    simulate_mode.add_argument("--sweep", action="store_true",
                               help="sweep every (attack, defense) combination")
    simulate_mode.add_argument("--validate", action="store_true",
                               help="cross-check Theorem 1 over the attack registry")
    simulate_mode.add_argument("--ablate-window", action="store_true",
                               help="sweep the ROB/RS/port window-length ablation "
                                    "(all attacks, or just the named one)")
    simulate_mode.add_argument("--batch", metavar="FILE",
                               help="run a JSON list of simulate points (attack "
                                    "names or {attack, defenses, secret, model} "
                                    "objects) through one warm session per worker")
    simulate_parser.add_argument("--contended", action="store_true",
                                 help="use the contended timing model "
                                      "(bounded FU ports and CDB width)")
    simulate_parser.add_argument("--parallel", type=int, default=None,
                                 help="shard the sweep/validation/ablation over N workers")
    simulate_parser.add_argument("--json", action="store_true",
                                 help="emit the engine Result envelope as JSON")
    simulate_parser.set_defaults(handler=_cmd_simulate)

    run_parser = subparsers.add_parser(
        "run",
        help="execute a declarative scenario spec or grid",
        parents=[store_parent],
        description="Execute one ScenarioSpec (or a ScenarioGrid of them) "
                    "through the engine's cached, sharded run spine.  Kinds: "
                    + "; ".join(
                        f"{name} ({info.description})"
                        for name, info in sorted(KINDS.items())
                    ),
    )
    run_parser.add_argument("--spec", help="JSON file holding a spec or grid")
    run_parser.add_argument("--kind", help=f"scenario kind: {', '.join(sorted(KINDS))}")
    run_parser.add_argument(
        "--param", action="append", metavar="NAME=VALUE",
        help="spec parameter (repeatable); VALUE parses as int / JSON / "
             "'none' / string.  program_path=FILE inlines an assembly file",
    )
    run_parser.add_argument(
        "--axis", action="append", metavar="NAME=V1,V2",
        help="grid axis (repeatable); turns the run into a ScenarioGrid "
             "over the cartesian product of all axes",
    )
    run_parser.add_argument("--parallel", type=int, default=None,
                            help="shard grid execution over N workers")
    run_parser.add_argument("--json", action="store_true",
                            help="emit the engine Result envelope as JSON")
    run_parser.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted campaign: serve completed grid points "
             "from the artifact store (implies --store disk when no store "
             "is selected) and recompute only the missing ones",
    )
    run_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-point wall-clock limit; a worker silent past it is "
             "presumed hung, killed and the point retried in isolation",
    )
    run_parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="extra attempts a failing grid point gets before it is "
             "quarantined as an error envelope (default 2 when --timeout "
             "enables the failure policy)",
    )
    run_parser.add_argument(
        "--faults", metavar="PLAN.json", default=None,
        help="deterministic fault-injection plan (testing): seeded worker "
             "exceptions / hangs / crashes and store corruption",
    )
    run_parser.add_argument(
        "--trace", metavar="FILE.jsonl", default=None,
        help="write a JSONL span trace of the run (engine, store and pool-"
             "worker spans); inspect with 'repro trace summarize FILE'",
    )
    run_parser.add_argument(
        "--progress", action="store_true",
        help="live progress line on stderr for grid runs: done/total, "
             "points/s, ETA and quarantine count",
    )
    run_parser.set_defaults(handler=_cmd_run)

    from .fuzz.generator import INJECTIONS

    fuzz_parser = subparsers.add_parser(
        "fuzz",
        help="seeded differential fuzzing over the TSG and timing oracles",
        parents=[store_parent],
        description="Generate a seeded stream of speculation gadgets and run "
                    "each through both leak oracles -- the TSG structural "
                    "verdict and the cycle-accurate transmit/squash race -- "
                    "checkpointing every point in the artifact store.  "
                    "Disagreements are auto-shrunk to minimal reproducers; "
                    "--corpus pins them as regression fixtures.",
    )
    fuzz_parser.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed (default 0); the same seed always generates the "
             "same programs, byte for byte",
    )
    fuzz_parser.add_argument(
        "--count", type=int, default=256,
        help="number of generated gadgets (default 256)",
    )
    fuzz_parser.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; the campaign stops at the next chunk "
             "boundary once exceeded (completed points stay checkpointed, "
             "--resume finishes the rest)",
    )
    fuzz_parser.add_argument(
        "--secret", type=lambda v: int(v, 0), default=None,
        help="planted secret byte (default 0x5A)",
    )
    fuzz_parser.add_argument(
        "--contended", action="store_true",
        help="run the timing oracle on the contended model "
             "(bounded FU ports and CDB width)",
    )
    fuzz_parser.add_argument(
        "--inject", choices=INJECTIONS, default=None,
        help="deterministic oracle fault (testing the pipeline end to end): "
             "no_flush skips the authorization flush so the timing oracle "
             "calls leaking bounds-check gadgets safe",
    )
    fuzz_parser.add_argument(
        "--corpus", metavar="DIR", default=None,
        help="pin shrunk disagreements and bucket coverage into this corpus "
             "directory",
    )
    fuzz_parser.add_argument(
        "--parallel", type=int, default=None,
        help="shard campaign chunks over N workers",
    )
    fuzz_parser.add_argument(
        "--json", action="store_true",
        help="emit the engine Result envelope as JSON",
    )
    fuzz_parser.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted campaign: serve completed fuzz points "
             "from the artifact store (implies --store disk when no store "
             "is selected) and recompute only the missing ones",
    )
    fuzz_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-point wall-clock limit; a worker silent past it is "
             "presumed hung, killed and the point retried in isolation",
    )
    fuzz_parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="extra attempts a failing fuzz point gets before it is "
             "quarantined as an error envelope (default 2 when --timeout "
             "enables the failure policy)",
    )
    fuzz_parser.add_argument(
        "--faults", metavar="PLAN.json", default=None,
        help="deterministic fault-injection plan (testing): seeded worker "
             "exceptions / hangs / crashes and store corruption",
    )
    fuzz_parser.add_argument(
        "--trace", metavar="FILE.jsonl", default=None,
        help="write a JSONL span trace of the campaign (fuzz.generate, "
             "fuzz.point, engine and pool-worker spans)",
    )
    fuzz_parser.add_argument(
        "--progress", action="store_true",
        help="live progress line on stderr: done/total, points/s, ETA",
    )
    fuzz_parser.set_defaults(handler=_cmd_fuzz)

    report_parser = subparsers.add_parser(
        "report", help="emit the full Markdown report",
        parents=[store_parent],
    )
    report_parser.add_argument("--output", "-o", help="write the report to a file")
    report_parser.add_argument("--no-matrix", action="store_true",
                               help="skip the defense x attack matrix (faster)")
    report_parser.set_defaults(handler=_cmd_report)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the async analysis service over one shared engine",
        parents=[store_parent],
        description="Serve JSON ScenarioSpec requests over HTTP: single-"
                    "flight dedup by content hash, micro-batched grids "
                    "through Engine.iter_grid, a bounded admission queue "
                    "(503 + Retry-After on overflow) and /stats.  SIGTERM "
                    "or Ctrl-C drains gracefully; completed points are "
                    "checkpointed through the store, so a restarted server "
                    "warm-serves them.  Default store: disk.",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=0,
                              help="port to bind (default 0 = ephemeral, "
                                   "printed on startup)")
    serve_parser.add_argument("--batch-size", type=int, default=16,
                              help="max specs per dispatched grid batch")
    serve_parser.add_argument("--batch-window", type=float, default=0.005,
                              metavar="SECONDS",
                              help="how long a partial batch waits for "
                                   "stragglers before dispatching")
    serve_parser.add_argument("--queue-depth", type=int, default=64,
                              help="admission queue bound (backpressure)")
    serve_parser.add_argument("--max-body", type=int, default=1 << 20,
                              metavar="BYTES",
                              help="largest accepted request body")
    serve_parser.add_argument("--parallel", type=int, default=None,
                              help="shard each batch over N engine workers")
    serve_parser.add_argument(
        "--trace", metavar="FILE.jsonl", default=None,
        help="write a JSONL span trace of every request: service admission, "
             "queueing, batching, engine execution and pool-worker spans",
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    request_parser = subparsers.add_parser(
        "request",
        help="submit one spec to a running analysis service",
    )
    request_parser.add_argument("--url", required=True,
                                help="service base URL, e.g. http://127.0.0.1:8377")
    request_parser.add_argument("--spec", help="JSON file holding one point spec")
    request_parser.add_argument("--kind", help=f"scenario kind: {', '.join(sorted(KINDS))}")
    request_parser.add_argument(
        "--param", action="append", metavar="NAME=VALUE",
        help="spec parameter (repeatable), like repro run --param",
    )
    request_parser.add_argument("--stats", action="store_true",
                                help="fetch the server's /stats document instead")
    request_parser.add_argument("--timeout", type=float, default=120.0,
                                help="request timeout in seconds")
    request_parser.add_argument("--json", action="store_true",
                                help="emit the full response envelope as JSON")
    request_parser.set_defaults(handler=_cmd_request)

    trace_parser = subparsers.add_parser(
        "trace", help="inspect a JSONL span trace written by --trace",
    )
    trace_subparsers = trace_parser.add_subparsers(
        dest="trace_command", required=True
    )
    summarize_parser = trace_subparsers.add_parser(
        "summarize",
        help="per-phase latency breakdown, slowest points and critical path",
        description="Aggregate a JSONL span trace (from 'repro run --trace' "
                    "or 'repro serve --trace'): span counts and wall time "
                    "per phase (queue / batch / build / analyze / simulate / "
                    "store-put), the slowest individual points, and the "
                    "critical path from the latest-finishing span back to "
                    "its root.",
    )
    summarize_parser.add_argument("file", help="JSONL trace file to summarize")
    summarize_parser.add_argument("--top", type=int, default=10,
                                  help="how many slowest spans to list")
    summarize_parser.add_argument("--json", action="store_true",
                                  help="emit the summary as JSON")
    summarize_parser.set_defaults(handler=_cmd_trace)

    perf_parser = subparsers.add_parser(
        "perf", help="run the TSG-core perf suite and append to BENCH_core.json"
    )
    perf_parser.add_argument("--output", "-o", default="BENCH_core.json",
                             help="trajectory file to append to")
    perf_budget = perf_parser.add_mutually_exclusive_group()
    perf_budget.add_argument("--quick", action="store_true",
                             help="smaller baseline budget, single repeat")
    perf_budget.add_argument("--full", action="store_true",
                             help="run the full 500-instruction rescan baseline "
                                  "(the default keeps the 200-instruction run)")
    perf_parser.add_argument("--check", action="store_true",
                             help="check the trajectory against the ROADMAP "
                                  "regression thresholds instead of benchmarking")
    perf_parser.add_argument("--allow-stale", action="store_true",
                             help="with --check: tolerate a latest record whose "
                                  "commit differs from HEAD (still warns)")
    perf_parser.set_defaults(handler=_cmd_perf)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except KeyboardInterrupt:
        # The backstop for every subcommand (run has its own richer
        # handler): never a traceback, never a join on a wedged pool.
        halt_default_engine()
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover - exercised via the console entry point
    sys.exit(main())
