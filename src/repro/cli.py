"""Command-line interface over the :class:`repro.engine.Engine` session API.

Every analysis command is a thin veneer over one engine session: programs
are analysed through the content-addressed artifact cache (so re-analysing
an unchanged file is a cache hit), the defense matrix and attack-space
sweeps run on the engine's shardable execution plane, and the ``--json``
flags emit the engine's uniform :class:`~repro.engine.Result` envelope for
scripting pipelines.

Subcommands::

    repro tables                       # regenerate Tables I, II, III
    repro attacks                      # list the attack catalog
    repro attack spectre_v1            # describe one attack graph
    repro defenses                     # list the defense catalog
    repro evaluate lfence spectre_v1   # does a defense defeat an attack?
    repro evaluate --json lfence ...   # ... as a JSON Result envelope
    repro analyze victim.s             # run the Figure 9 tool on a program
    repro analyze --json victim.s      # ... as a JSON Result envelope
    repro patch victim.s               # analyze + insert fences
    repro exploit spectre_v1           # run an exploit on the simulator
    repro ablation meltdown            # defense ablation on the simulator
    repro report                       # full Markdown report
    repro perf                         # core + engine perf -> BENCH_core.json

Everything the CLI prints can be reproduced programmatically:
``Engine().analyze(program)`` / ``.evaluate(defense, variant)`` /
``.synthesize()`` / ``.run_exploits()`` return the same envelopes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from . import analysis
from .analysis.report import full_report
from .attacks import ALL_VARIANTS, get as get_attack
from .defenses import ALL_DEFENSES, get as get_defense
from .engine import default_engine
from .exploits import EXPLOITS, defense_ablation
from .graphtool import patch_program
from .isa import assemble
from .uarch import SimDefense, UarchConfig


def _cmd_tables(_: argparse.Namespace) -> int:
    print("Table I -- speculative attacks and their variants")
    print(analysis.table1())
    print("\nTable II -- industrial defenses")
    print(analysis.table2())
    print("\nTable III -- authorization and illegal-access nodes")
    print(analysis.table3())
    return 0


def _cmd_attacks(_: argparse.Namespace) -> int:
    rows = [
        (variant.key, variant.name, variant.cve or "N/A", variant.category.value)
        for variant in ALL_VARIANTS.values()
    ]
    print(analysis.format_table(("key", "attack", "CVE", "category"), rows))
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    variant = get_attack(args.key)
    graph = variant.build_graph()
    print(graph.describe())
    if args.dot:
        print()
        print(analysis.dot_graph(graph))
    else:
        print()
        print(analysis.ascii_graph(graph))
    return 0


def _cmd_defenses(_: argparse.Namespace) -> int:
    print(analysis.defense_strategy_table())
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    defense = get_defense(args.defense)
    variant = get_attack(args.attack)
    result = default_engine().evaluate(defense, variant)
    if args.json:
        print(result.to_json())
        return 0 if result.ok else 1
    evaluation = result.payload
    print(f"defense:   {defense.name} [{defense.strategy.value}]")
    print(f"attack:    {variant.name}")
    print(f"applicable: {evaluation.applicable}")
    print(f"leaks before: {evaluation.leaked_before}, leaks after: {evaluation.leaked_after}")
    print(f"verdict:   {'defeats the attack' if evaluation.effective else 'does NOT defeat the attack'}")
    if evaluation.notes:
        print(f"notes:     {evaluation.notes}")
    return 0 if evaluation.effective else 1


def _load_program(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return assemble(handle.read(), name=path)


def _cmd_analyze(args: argparse.Namespace) -> int:
    result = default_engine().analyze(_load_program(args.program))
    if args.json:
        print(result.to_json())
    else:
        print(result.payload.summary())
    return 0 if result.ok else 1


def _cmd_patch(args: argparse.Namespace) -> int:
    result = patch_program(_load_program(args.program))
    print(result.summary())
    print()
    print(result.patched.listing())
    return 0


def _parse_defenses(names: Optional[Sequence[str]]) -> Optional[List[SimDefense]]:
    if not names:
        return None
    selected = []
    for name in names:
        try:
            selected.append(SimDefense[name.upper()])
        except KeyError:
            known = ", ".join(defense.name.lower() for defense in SimDefense)
            raise SystemExit(f"unknown simulator defense {name!r}; known: {known}")
    return selected


def _cmd_exploit(args: argparse.Namespace) -> int:
    if args.name not in EXPLOITS:
        raise SystemExit(f"unknown exploit {args.name!r}; known: {', '.join(sorted(EXPLOITS))}")
    config = UarchConfig()
    defenses = _parse_defenses(args.defense)
    if defenses:
        config = config.with_defenses(*defenses)
    result = EXPLOITS[args.name](config, args.secret)
    print(result)
    print(f"speculative windows: {result.stats.speculative_windows}, "
          f"transient instructions: {result.stats.transient_instructions}, "
          f"squashes: {result.stats.squashes}, faults: {result.stats.faults}")
    return 0 if not result.success else 1


def _cmd_ablation(args: argparse.Namespace) -> int:
    rows = defense_ablation(args.name, secret=args.secret)
    table_rows = [
        (row.defense_name, row.strategy_name, "LEAKS" if row.leaked else "defeated")
        for row in rows
    ]
    print(analysis.format_table(("defense", "strategy", "outcome"), table_rows))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    text = full_report(include_matrix=not args.no_matrix)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from . import perf

    run = perf.main(output=args.output, quick=args.quick)
    print(f"commit {run['commit']}  ({run['timestamp']})")
    for record in run["results"]:
        print(
            f"  {record['graph']}: all-pairs races "
            f"{record['closure_all_pairs_seconds'] * 1e3:.2f} ms (closure) vs "
            f"{record['bfs_all_pairs_seconds_estimate'] * 1e3:.1f} ms (seed BFS, "
            f"{record['bfs_baseline_mode']}) -> {record['speedup_all_pairs']:.0f}x speedup"
        )
    for line in perf.format_engine_records(run):
        print(f"  {line}")
    print(f"trajectory appended to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Attack-graph models for speculative execution attacks (HPCA 2021 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("tables", help="regenerate Tables I, II and III").set_defaults(
        handler=_cmd_tables
    )
    subparsers.add_parser("attacks", help="list the attack catalog").set_defaults(
        handler=_cmd_attacks
    )

    attack_parser = subparsers.add_parser("attack", help="describe one attack graph")
    attack_parser.add_argument("key", help="attack key, e.g. spectre_v1")
    attack_parser.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    attack_parser.set_defaults(handler=_cmd_attack)

    subparsers.add_parser("defenses", help="list the defense catalog").set_defaults(
        handler=_cmd_defenses
    )

    evaluate_parser = subparsers.add_parser("evaluate", help="evaluate a defense against an attack")
    evaluate_parser.add_argument("defense", help="defense key, e.g. lfence")
    evaluate_parser.add_argument("attack", help="attack key, e.g. spectre_v1")
    evaluate_parser.add_argument("--json", action="store_true",
                                 help="emit the engine Result envelope as JSON")
    evaluate_parser.set_defaults(handler=_cmd_evaluate)

    analyze_parser = subparsers.add_parser("analyze", help="run the Figure 9 tool on a program")
    analyze_parser.add_argument("program", help="path to an assembly file")
    analyze_parser.add_argument("--json", action="store_true",
                                 help="emit the engine Result envelope as JSON")
    analyze_parser.set_defaults(handler=_cmd_analyze)

    patch_parser = subparsers.add_parser("patch", help="analyze a program and insert fences")
    patch_parser.add_argument("program", help="path to an assembly file")
    patch_parser.set_defaults(handler=_cmd_patch)

    exploit_parser = subparsers.add_parser("exploit", help="run an exploit on the simulator")
    exploit_parser.add_argument("name", help=f"one of: {', '.join(sorted(EXPLOITS))}")
    exploit_parser.add_argument("--secret", type=lambda v: int(v, 0), default=0x5A)
    exploit_parser.add_argument(
        "--defense",
        action="append",
        help="simulator defense to enable (may be repeated), e.g. kernel_isolation",
    )
    exploit_parser.set_defaults(handler=_cmd_exploit)

    ablation_parser = subparsers.add_parser("ablation", help="defense ablation for one exploit")
    ablation_parser.add_argument("name", help=f"one of: {', '.join(sorted(EXPLOITS))}")
    ablation_parser.add_argument("--secret", type=lambda v: int(v, 0), default=0x5A)
    ablation_parser.set_defaults(handler=_cmd_ablation)

    report_parser = subparsers.add_parser("report", help="emit the full Markdown report")
    report_parser.add_argument("--output", "-o", help="write the report to a file")
    report_parser.add_argument("--no-matrix", action="store_true",
                               help="skip the defense x attack matrix (faster)")
    report_parser.set_defaults(handler=_cmd_report)

    perf_parser = subparsers.add_parser(
        "perf", help="run the TSG-core perf suite and append to BENCH_core.json"
    )
    perf_parser.add_argument("--output", "-o", default="BENCH_core.json",
                             help="trajectory file to append to")
    perf_parser.add_argument("--quick", action="store_true",
                             help="smaller baseline budget, single repeat")
    perf_parser.set_defaults(handler=_cmd_perf)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via the console entry point
    sys.exit(main())
