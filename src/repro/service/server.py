"""The asyncio analysis service: single-flight dedup + micro-batched grids.

One :class:`AnalysisService` owns one :class:`~repro.engine.Engine` (and
through it one artifact store).  Life of a request:

1. **decode** -- the JSON body becomes a :class:`~repro.scenario.
   ScenarioSpec`; its content hash *is* the request key.
2. **admit** -- if an entry with that hash is already in flight the request
   *attaches* to it (single-flight: attaching is free and never rejected);
   otherwise the spec joins the bounded admission queue, or is refused with
   ``503`` + ``Retry-After`` when the queue is full (backpressure).
3. **batch** -- the dispatcher coalesces queued entries (up to
   ``batch_size``, waiting at most ``batch_window`` seconds for stragglers),
   groups them by kind and executes each group as one explicit
   :class:`~repro.scenario.ScenarioGrid` through :meth:`Engine.iter_grid`
   on a dedicated engine thread.  ``iter_grid`` checkpoints every completed
   point through the store *before* yielding it, so each point is streamed
   back to its waiters -- and made durable -- the moment it lands.
4. **respond** -- every waiter gets the same ``Result`` envelope, stamped
   with a request id, its hit source (``memory`` / ``disk`` /
   ``in-flight`` / ``computed``) and queue / compute / total latency.

All service state is mutated on the event-loop thread only; the engine runs
on its own single-thread executor (the engine is not thread-safe -- one
engine thread serializes all compute), with completions marshalled back via
``call_soon_threadsafe``.

Graceful drain: SIGTERM / Ctrl-C stops accepting connections, lets every
in-flight batch finish (each point already durable through the store) and
exits 0 -- a restarted server warm-serves the completed specs from disk.
"""

from __future__ import annotations

import asyncio
import itertools
import signal
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from ..engine import Engine, Result
from ..obs.metrics import GLOBAL_REGISTRY, MetricsRegistry, render_registries
from ..obs.trace import Span, TraceContext, Tracer
from ..scenario import ScenarioGrid, ScenarioSpec
from ..store import store_label
from .protocol import (
    BadRequest,
    ExecutionFailed,
    MethodNotAllowed,
    NotFound,
    Overloaded,
    RequestError,
    decode_spec_body,
    decode_spec_payload,
    read_request,
    write_response,
)
from .stats import ServiceStats


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one :class:`AnalysisService`."""

    host: str = "127.0.0.1"
    #: ``0`` binds an ephemeral port (read it back from ``service.port``).
    port: int = 0
    #: Most points one dispatched grid batch carries.
    batch_size: int = 16
    #: Seconds the dispatcher waits for stragglers before dispatching a
    #: partial batch.  ``0`` dispatches whatever one loop tick admitted.
    batch_window: float = 0.005
    #: Bound of the admission queue -- the backpressure knob.  Attaching to
    #: an in-flight entry never counts against it.
    queue_depth: int = 64
    #: Request bodies above this are refused with ``413``.
    max_body_bytes: int = 1 << 20
    #: ``Retry-After`` hint (seconds) sent with ``503`` rejections.
    retry_after: float = 1.0
    #: Worker count handed to ``Engine.iter_grid`` per batch (``None`` =
    #: the engine session default; the batch itself is the parallelism).
    parallel: Optional[int] = None
    #: JSONL trace sink.  Set (``repro serve --trace``) it opens a
    #: :class:`~repro.obs.Tracer` shared with the engine, so one file holds
    #: the full request -> entry -> batch -> grid -> worker span tree.
    trace_path: Optional[str] = None


@dataclass
class _Entry:
    """One in-flight spec: the unit of single-flight dedup."""

    spec: ScenarioSpec
    key: str
    waiters: List["asyncio.Future[Tuple[_Entry, Optional[Result]]]"] = field(
        default_factory=list
    )
    enqueued: float = 0.0
    dispatched: float = 0.0
    completed: float = 0.0
    hit: str = "computed"
    error: Optional[str] = None
    #: Tracing (set only when the service has a tracer): the entry's
    #: lifetime span and its admission->dispatch child.
    span: Optional[Span] = None
    queue_span: Optional[Span] = None

    @property
    def queue_ms(self) -> float:
        return max(0.0, (self.dispatched - self.enqueued) * 1e3)

    @property
    def compute_ms(self) -> float:
        return max(0.0, (self.completed - self.dispatched) * 1e3)


class AnalysisService:
    """Many concurrent clients multiplexed over one shared engine."""

    def __init__(self, engine: Engine, config: Optional[ServiceConfig] = None) -> None:
        self.engine = engine
        self.config = config or ServiceConfig()
        #: Service-owned registry (request/batch counters, queue gauges);
        #: ``/metrics`` renders it together with the engine's registry and
        #: the process-global one (fault injections).
        self.metrics = MetricsRegistry()
        self.stats_view = ServiceStats(registry=self.metrics)
        self._depth_gauge = self.metrics.gauge(
            "repro_service_queue_depth", "Specs waiting in the admission queue."
        )
        self._inflight_gauge = self.metrics.gauge(
            "repro_service_inflight_points", "Points currently executing."
        )
        self._draining_gauge = self.metrics.gauge(
            "repro_service_draining", "1 while the service is draining."
        )
        self.metrics.register_collector(self._sync_gauges)
        #: Tracer: ``config.trace_path`` opens a service-owned JSONL sink
        #: (shared with the engine, so grid/shard/worker spans land in the
        #: same file); otherwise an engine-attached tracer is reused.
        self._owns_tracer = self.config.trace_path is not None
        if self._owns_tracer:
            self.tracer: Optional[Tracer] = Tracer(sink=self.config.trace_path)
            engine.tracer = self.tracer
        else:
            self.tracer = engine.tracer
        self._inflight: Dict[str, _Entry] = {}
        self._queue: "List[_Entry]" = []
        self._executing = 0
        self._draining = False
        self._ids = itertools.count(1)
        self._queue_event = asyncio.Event()
        self._dispatcher: Optional[asyncio.Task] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Set[asyncio.Task] = set()
        #: One thread: the engine is a single-session object, every batch
        #: (and every ad-hoc engine call) is serialized through it.
        self._engine_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service-engine"
        )
        self._stats_window_base: Dict[str, object] = {}
        self.engine.register_stats("service", self.stats_view.counters)

    # -- lifecycle ------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` ephemeral binds)."""
        if self._server is None or not self._server.sockets:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self, *, listen: bool = True) -> None:
        """Start the dispatcher (and, by default, the listening socket)."""
        self._queue_event = asyncio.Event()
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        self._stats_window_base = self._engine_stats_safe()
        if listen:
            self._server = await asyncio.start_server(
                self._on_connection, self.config.host, self.config.port
            )

    async def drain(self, *, connection_grace: float = 10.0) -> None:
        """Stop accepting, finish every in-flight entry, stop the dispatcher.

        Every completed point was checkpointed through the store before its
        waiters saw it, so nothing computed here is ever lost -- a restarted
        server serves it warm from disk.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        while self._inflight or self._queue:
            # The dispatcher is doing the actual work; this just outlives it.
            self._queue_event.set()
            await asyncio.sleep(0.005)
        if self._connections:
            # Let in-flight handlers flush their responses; a wedged client
            # connection cannot hold the shutdown hostage past the grace.
            done, pending = await asyncio.wait(
                list(self._connections), timeout=connection_grace
            )
            for task in pending:
                task.cancel()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        self._engine_pool.shutdown(wait=True)
        if self.tracer is not None:
            # A service-owned tracer is closed for good (the campaign file
            # is complete); an engine-attached one is only flushed -- its
            # owner decides when it ends.
            if self._owns_tracer:
                self.tracer.close()
            else:
                self.tracer.flush()

    # -- observability plumbing -----------------------------------------
    def _sync_gauges(self) -> None:
        self._depth_gauge.set(len(self._queue))
        self._inflight_gauge.set(self._executing)
        self._draining_gauge.set(1 if self._draining else 0)

    def _active_tracer(self) -> Optional[Tracer]:
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            return tracer
        return None

    # -- admission (single-flight + backpressure) -----------------------
    def _admit(
        self, spec: ScenarioSpec, parent: Optional[TraceContext] = None
    ) -> Tuple["asyncio.Future[Tuple[_Entry, Optional[Result]]]", bool]:
        """Attach to an in-flight entry or enqueue a new one.

        Returns ``(waiter_future, attached)``.  Raises :class:`Overloaded`
        when the spec is new and the admission queue is at depth (attaching
        costs nothing, so it is always allowed -- even mid-drain).
        ``parent`` is the admitting request's trace context: a *new* entry
        opens its single-flight span under it (attaching requests share the
        first admitter's entry, exactly like they share its computation).
        """
        key = spec.content_hash()
        loop = asyncio.get_running_loop()
        entry = self._inflight.get(key)
        if entry is not None:
            waiter = loop.create_future()
            entry.waiters.append(waiter)
            self.stats_view.record_request()
            self.stats_view.record_hit("in-flight")
            return waiter, True
        if self._draining:
            self.stats_view.record_rejection()
            raise Overloaded(
                "server is draining; retry against the restarted instance",
                code="draining",
                retry_after=self.config.retry_after,
            )
        if len(self._queue) >= self.config.queue_depth:
            self.stats_view.record_rejection()
            raise Overloaded(
                f"admission queue is full ({len(self._queue)} specs queued); "
                "retry shortly",
                retry_after=self.config.retry_after,
            )
        entry = _Entry(spec=spec, key=key, enqueued=time.perf_counter())
        tracer = self._active_tracer()
        if tracer is not None:
            # Detached: entry spans finish from completion callbacks in
            # arbitrary order -- they must not join the loop thread's stack.
            entry.span = tracer.span(
                "service.entry", parent=parent, detached=True,
                kind=spec.kind, key=key[:12],
            )
            entry.queue_span = tracer.span(
                "service.queue", parent=entry.span, detached=True
            )
        waiter = loop.create_future()
        entry.waiters.append(waiter)
        self._inflight[key] = entry
        self._queue.append(entry)
        self._queue_event.set()
        self.stats_view.record_request()
        return waiter, False

    # -- the dispatcher: queue -> kind-grouped grid batches --------------
    async def _dispatch_loop(self) -> None:
        config = self.config
        while True:
            while not self._queue:
                self._queue_event.clear()
                await self._queue_event.wait()
            if config.batch_window > 0 and len(self._queue) < config.batch_size:
                await asyncio.sleep(config.batch_window)
            batch = self._queue[: config.batch_size]
            del self._queue[: len(batch)]
            groups: Dict[str, List[_Entry]] = {}
            for entry in batch:
                groups.setdefault(entry.spec.kind, []).append(entry)
            for entries in groups.values():
                # Explicit grids are single-kind; awaiting here serializes
                # batches through the one engine thread by construction.
                await self._execute_batch(entries)

    async def _execute_batch(self, entries: List[_Entry]) -> None:
        loop = asyncio.get_running_loop()
        tracer = self._active_tracer()
        now = time.perf_counter()
        for entry in entries:
            entry.dispatched = now
            if tracer is not None and entry.queue_span is not None:
                tracer.finish(entry.queue_span)
                entry.queue_span = None
        self.stats_view.record_batch(len(entries))
        self._executing += len(entries)
        grid = ScenarioGrid.explicit([entry.spec for entry in entries])
        parallel = self.config.parallel
        batch_parent = entries[0].span.context() if (
            tracer is not None and entries[0].span is not None
        ) else None

        def run_grid() -> None:
            # The batch span opens *on the engine thread*, un-detached, so
            # engine.iter_grid (and through it shard and worker spans)
            # parent onto it via the thread-local stack; its own parent is
            # the first admitted entry's span, linking batch execution back
            # to the request that triggered the dispatch.
            span = (
                tracer.span(
                    "service.batch", parent=batch_parent,
                    points=len(entries), kind=grid.kind,
                )
                if tracer is not None
                else None
            )
            try:
                for point in self.engine.iter_grid(grid, parallel=parallel):
                    loop.call_soon_threadsafe(
                        self._complete, entries[point.index], point.result
                    )
            except BaseException as exc:  # noqa: BLE001 - marshalled to waiters
                message = f"{exc.__class__.__name__}: {exc}"
                loop.call_soon_threadsafe(self._fail_remaining, entries, message)
            finally:
                if span is not None:
                    tracer.finish(span)

        try:
            await loop.run_in_executor(self._engine_pool, run_grid)
        except RuntimeError:  # pool already shut down mid-drain
            self._fail_remaining(entries, "service executor is shut down")

    def _complete(self, entry: _Entry, result: Result) -> None:
        """One grid point landed: classify the hit, wake every waiter."""
        if self._inflight.get(entry.key) is not entry:
            return  # already failed via _fail_remaining
        entry.completed = time.perf_counter()
        if result.cache == "warm":
            entry.hit = store_label(self.engine.store)
        else:
            entry.hit = "computed"
        self.stats_view.record_hit(entry.hit)
        self._finish(entry, result)

    def _fail_remaining(self, entries: List[_Entry], message: str) -> None:
        """A batch executor raised: fail every entry that never completed."""
        for entry in entries:
            if self._inflight.get(entry.key) is not entry:
                continue  # completed already -- or a newer entry owns the key
            entry.completed = time.perf_counter()
            entry.error = message
            self.stats_view.record_error()
            self._finish(entry, None)

    def _finish(self, entry: _Entry, result: Optional[Result]) -> None:
        if self._inflight.get(entry.key) is entry:
            del self._inflight[entry.key]
        self._executing = max(0, self._executing - 1)
        tracer = self._active_tracer()
        if tracer is not None:
            if entry.queue_span is not None:  # failed before dispatch
                tracer.finish(entry.queue_span)
                entry.queue_span = None
            if entry.span is not None:
                entry.span.set(hit=entry.hit, waiters=len(entry.waiters))
                if entry.error is not None:
                    entry.span.set(error=entry.error)
                tracer.finish(entry.span)
        for waiter in entry.waiters:
            if not waiter.done():  # a cancelled waiter left the party early
                waiter.set_result((entry, result))

    # -- the request path ------------------------------------------------
    def next_request_id(self) -> str:
        return f"req-{next(self._ids):06d}"

    async def request(
        self,
        payload: Union[ScenarioSpec, Dict[str, object]],
        *,
        request_id: Optional[str] = None,
    ) -> Dict[str, object]:
        """Submit one spec and await its envelope (the in-process client).

        Raises :class:`RequestError` on rejection or executor failure.
        Cancelling the awaiting task abandons only *this* waiter; the shared
        computation (and every other waiter) is untouched.
        """
        spec = (
            payload
            if isinstance(payload, ScenarioSpec)
            else decode_spec_payload(payload)
        )
        if request_id is None:
            request_id = self.next_request_id()
        tracer = self._active_tracer()
        span = (
            tracer.span(
                "service.request", detached=True,
                request_id=request_id, kind=spec.kind,
            )
            if tracer is not None
            else None
        )
        arrival = time.perf_counter()
        try:
            waiter, attached = self._admit(
                spec, span.context() if span is not None else None
            )
            entry, result = await waiter
        except BaseException as exc:
            if span is not None:
                tracer.finish(span.set(error=exc.__class__.__name__))
            raise
        total_ms = (time.perf_counter() - arrival) * 1e3
        if span is not None:
            hit_label = "in-flight" if attached else entry.hit
            span.set(hit=hit_label, ok=entry.error is None)
            tracer.finish(span)
        if entry.error is not None or result is None:
            raise ExecutionFailed(entry.error or "spec execution failed")
        hit = "in-flight" if attached else entry.hit
        self.stats_view.record_completion(entry.queue_ms, entry.compute_ms, total_ms)
        return {
            "request_id": request_id,
            "ok": result.ok,
            "hit": hit,
            "spec": {"kind": spec.kind, "content_hash": entry.key},
            "latency_ms": {
                "queue": round(entry.queue_ms, 3),
                "compute": round(entry.compute_ms, 3),
                "total": round(total_ms, 3),
            },
            "result": result.to_dict(),
        }

    # -- observability ----------------------------------------------------
    def _engine_stats_safe(self) -> Dict[str, object]:
        """``engine.stats()`` read from the loop thread.

        The engine thread may be mid-batch; a dict that grows under
        iteration raises ``RuntimeError``, so retry a few times and settle
        for an empty report rather than failing ``/stats``.
        """
        for _ in range(5):
            try:
                return self.engine.stats()
            except RuntimeError:
                continue
        return {}

    def stats(self) -> Dict[str, object]:
        """The ``/stats`` document: service gauges + engine counters + window."""
        engine_stats = self._engine_stats_safe()
        window = Engine.stats_delta(self._stats_window_base, engine_stats)
        self._stats_window_base = engine_stats
        return {
            "service": self.stats_view.snapshot(
                depth=len(self._queue), inflight=self._executing
            ),
            "engine": engine_stats,
            "window": window,
        }

    def metrics_text(self) -> str:
        """The ``/metrics`` document: every registry, Prometheus text format.

        One scrape unifies the service registry (requests, batches, queue
        gauges), the engine registry (cache/run/grid counters plus the
        store ledger synced on scrape) and the process-global registry
        (fault injections).
        """
        return render_registries(self.metrics, self.engine.metrics, GLOBAL_REGISTRY)

    # -- the HTTP face ----------------------------------------------------
    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._handle_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        request_id = self.next_request_id()
        try:
            try:
                method, target, _headers, body = await read_request(
                    reader, self.config.max_body_bytes
                )
                path = target.partition("?")[0]
                status, envelope, headers = await self._route(
                    request_id, method, path, body
                )
            except RequestError as exc:
                status, envelope, headers = (
                    exc.status,
                    exc.envelope(request_id),
                    exc.headers(),
                )
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as exc:  # noqa: BLE001 - never crash the loop
                failure = ExecutionFailed(f"{exc.__class__.__name__}: {exc}")
                status, envelope, headers = (
                    failure.status,
                    failure.envelope(request_id),
                    failure.headers(),
                )
            await write_response(writer, status, envelope, headers)
        except (ConnectionError, asyncio.CancelledError):
            pass  # client vanished or drain grace expired
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover - transport already gone
                pass

    async def _route(
        self, request_id: str, method: str, path: str, body: bytes
    ) -> Tuple[int, Union[Dict[str, object], str], Dict[str, str]]:
        if path == "/run":
            if method != "POST":
                raise MethodNotAllowed("POST /run")
            spec = decode_spec_body(body)
            envelope = await self.request(spec, request_id=request_id)
            return 200, envelope, {}
        if path == "/stats":
            if method != "GET":
                raise MethodNotAllowed("GET /stats")
            return 200, self.stats(), {}
        if path == "/metrics":
            if method != "GET":
                raise MethodNotAllowed("GET /metrics")
            # Rendered as Prometheus text exposition, not JSON.
            return 200, self.metrics_text(), {}
        if path == "/healthz":
            if method != "GET":
                raise MethodNotAllowed("GET /healthz")
            return 200, {
                "ok": True,
                "draining": self._draining,
                "depth": len(self._queue),
                "inflight": self._executing,
            }, {}
        raise NotFound(f"no such endpoint: {path}")


# ---------------------------------------------------------------------------
# Running a service: blocking loop (CLI) and background thread (tests/bench)
# ---------------------------------------------------------------------------
def serve(engine: Engine, config: Optional[ServiceConfig] = None) -> int:
    """Run a service until SIGTERM / SIGINT, then drain gracefully.

    The blocking body of ``repro serve``.  Prints the bound address on
    stdout once listening (machine-readable: tests and scripts wait for
    it); drain progress goes to stderr.
    """

    async def body() -> None:
        service = AnalysisService(engine, config)
        await service.start()
        print(
            f"repro-service listening on http://{service.config.host}:{service.port}",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-Unix loop: Ctrl-C falls back to KeyboardInterrupt
        await stop.wait()
        print(
            "repro-service draining: completing in-flight work "
            "(checkpointed through the store) ...",
            file=sys.stderr,
            flush=True,
        )
        await service.drain()
        counters = service.stats_view.counters()
        print(
            f"repro-service drained: {counters['completed']} completed, "
            f"{counters['rejected']} rejected, hit-rate "
            f"{service.stats_view.hit_rate:.2%}",
            file=sys.stderr,
            flush=True,
        )

    try:
        asyncio.run(body())
    except KeyboardInterrupt:  # pragma: no cover - non-Unix fallback
        return 130
    return 0


class ServiceThread:
    """A service on a background thread with its own event loop.

    The in-process harness used by tests, the quickstart example and the
    load benchmark: ``with ServiceThread(engine) as handle:`` yields a
    running server whose ``handle.url`` stdlib clients can hit, and the
    exit path drains it gracefully.
    """

    def __init__(
        self, engine: Optional[Engine] = None, config: Optional[ServiceConfig] = None
    ) -> None:
        self.engine = engine if engine is not None else Engine()
        self.config = config or ServiceConfig()
        self.service: Optional[AnalysisService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = None
        self._ready = None
        self._stop: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    @property
    def url(self) -> str:
        assert self.service is not None, "ServiceThread not started"
        return f"http://{self.config.host}:{self.service.port}"

    def start(self) -> "ServiceThread":
        import threading

        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service thread never came up")
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def body() -> None:
            self._stop = asyncio.Event()
            service = AnalysisService(self.engine, self.config)
            try:
                await service.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                raise
            self.service = service
            self._ready.set()
            await self._stop.wait()
            await service.drain()

        try:
            loop.run_until_complete(body())
        except BaseException:  # noqa: BLE001 - surfaced via _startup_error
            pass
        finally:
            loop.close()

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
