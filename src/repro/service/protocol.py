"""Wire format of the analysis service: tiny HTTP/1.1 + JSON envelopes.

The service speaks just enough HTTP for stdlib clients (``curl``,
``http.client``, a browser hitting ``/stats``) without importing a web
framework: one request per connection, ``Content-Length`` bodies only, a
JSON object in and a JSON envelope out.

Every failure a client can provoke -- malformed JSON, an unknown scenario
kind, bad parameters, an oversized body, an overloaded queue -- maps to a
:class:`RequestError` subclass carrying an HTTP status and a stable machine
``code``, rendered as a structured error envelope::

    {"request_id": "...", "ok": false,
     "error": {"status": 400, "code": "bad-json", "message": "..."}}

The accept loop converts *any* exception into one of these; a request can
fail, the server cannot be crashed by one (the fuzz suite in
``tests/test_service_protocol.py`` holds the line).
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Mapping, Optional, Tuple, Union

from ..scenario import ScenarioSpec

#: Phrases for the handful of statuses the service emits.
STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Upper bound on header lines per request -- far above any real client,
#: low enough that a header flood cannot balloon the parser.
MAX_HEADER_LINES = 100


class RequestError(Exception):
    """A request-scoped failure with an HTTP status and a stable code.

    Raised anywhere between the socket read and the engine dispatch; the
    handler renders it as a structured error envelope and moves on to the
    next connection.  ``retry_after`` (seconds) is surfaced both in the
    envelope and as a ``Retry-After`` header -- the backpressure hint.
    """

    status = 400
    code = "bad-request"

    def __init__(
        self,
        message: str,
        *,
        status: Optional[int] = None,
        code: Optional[str] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        if status is not None:
            self.status = status
        if code is not None:
            self.code = code
        self.retry_after = retry_after

    @property
    def message(self) -> str:
        return self.args[0] if self.args else self.__class__.__name__

    def envelope(self, request_id: Optional[str] = None) -> Dict[str, object]:
        error: Dict[str, object] = {
            "status": self.status,
            "code": self.code,
            "message": self.message,
        }
        if self.retry_after is not None:
            error["retry_after"] = self.retry_after
        return {"request_id": request_id, "ok": False, "error": error}

    def headers(self) -> Dict[str, str]:
        if self.retry_after is None:
            return {}
        # Retry-After takes integral seconds; always hint at least 1.
        return {"Retry-After": str(max(1, round(self.retry_after)))}


class BadRequest(RequestError):
    """The client sent something the decoder cannot turn into a spec."""

    status = 400
    code = "bad-request"


class NotFound(RequestError):
    status = 404
    code = "not-found"


class MethodNotAllowed(RequestError):
    status = 405
    code = "method-not-allowed"


class PayloadTooLarge(RequestError):
    status = 413
    code = "payload-too-large"


class Overloaded(RequestError):
    """Backpressure: the admission queue is full (or the server is draining)."""

    status = 503
    code = "overloaded"


class ExecutionFailed(RequestError):
    """The spec was admitted but its executor raised."""

    status = 500
    code = "execution-failed"


# ---------------------------------------------------------------------------
# Request decoding: JSON body -> ScenarioSpec
# ---------------------------------------------------------------------------
def decode_spec_payload(payload: object) -> ScenarioSpec:
    """A :class:`ScenarioSpec` from a decoded JSON request body.

    Accepts the ``{"kind": ..., "params": {...}}`` shape of
    :meth:`ScenarioSpec.to_dict`.  Everything a hostile or confused client
    can send -- a non-object body, a grid, an unknown kind, bogus
    parameters, absurd nesting -- raises :class:`BadRequest` with a stable
    ``code``; nothing escapes as a bare exception.
    """
    if not isinstance(payload, Mapping):
        raise BadRequest(
            "request body must be a JSON object with 'kind' and 'params'",
            code="bad-shape",
        )
    if "axes" in payload or "specs" in payload:
        raise BadRequest(
            "grid requests are not accepted; submit point specs -- the "
            "server micro-batches them into grids itself",
            code="grid-request",
        )
    try:
        return ScenarioSpec.from_dict(payload)
    except RecursionError:
        raise BadRequest("request body is nested too deeply", code="bad-shape")
    except (KeyError, TypeError, ValueError) as exc:
        message = str(exc.args[0]) if exc.args else exc.__class__.__name__
        raise BadRequest(message, code="bad-spec")


def decode_spec_body(body: bytes) -> ScenarioSpec:
    """A :class:`ScenarioSpec` from a raw request body (bytes -> JSON -> spec)."""
    try:
        text = body.decode("utf-8")
    except UnicodeDecodeError:
        raise BadRequest("request body is not valid UTF-8", code="bad-encoding")
    try:
        payload = json.loads(text)
    except (ValueError, RecursionError):
        raise BadRequest("request body is not valid JSON", code="bad-json")
    return decode_spec_payload(payload)


# ---------------------------------------------------------------------------
# HTTP framing
# ---------------------------------------------------------------------------
async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> Tuple[str, str, Dict[str, str], bytes]:
    """Read one HTTP/1.1 request: ``(method, path, headers, body)``.

    Only what the service needs: a request line, ``Content-Length``-framed
    bodies (chunked encoding is rejected), a hard cap on body size *before*
    the body is read -- an oversized upload costs the server one header
    parse, not ``max_body_bytes`` of buffering.
    """
    try:
        request_line = await reader.readline()
    except (ValueError, asyncio.LimitOverrunError):
        raise BadRequest("request line too long")
    if not request_line.strip():
        raise BadRequest("empty request", code="empty-request")
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise BadRequest("malformed HTTP request line")
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    while True:
        try:
            line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            raise BadRequest("header line too long")
        if line in (b"\r\n", b"\n", b""):
            break
        if len(headers) >= MAX_HEADER_LINES:
            raise BadRequest("too many headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise BadRequest("malformed header line")
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise BadRequest("chunked request bodies are not supported")
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise BadRequest("malformed Content-Length header")
    if length < 0:
        raise BadRequest("malformed Content-Length header")
    if length > max_body_bytes:
        raise PayloadTooLarge(
            f"request body of {length} bytes exceeds the "
            f"{max_body_bytes}-byte limit"
        )
    if length == 0:
        return method, target, headers, b""
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise BadRequest("request body shorter than Content-Length")
    return method, target, headers, body


#: Content type of Prometheus text exposition responses (``/metrics``).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


async def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Union[Mapping[str, object], str],
    extra_headers: Optional[Mapping[str, str]] = None,
) -> None:
    """Serialize one response and flush it (connection closes after).

    Mapping payloads are JSON; a ``str`` payload is served verbatim as
    Prometheus text exposition -- the ``/metrics`` scrape format.
    """
    if isinstance(payload, str):
        body = payload.encode("utf-8")
        content_type = PROMETHEUS_CONTENT_TYPE
    else:
        body = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
        content_type = "application/json"
    phrase = STATUS_PHRASES.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
    try:
        await writer.drain()
    except ConnectionError:  # client went away mid-write; its loss
        pass
