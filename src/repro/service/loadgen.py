"""The concurrent load generator behind the ``service-throughput`` benchmark.

N client threads each fire M spec requests at a running service; a tunable
fraction of every client's specs is *shared* across all clients, so perfect
single-flight + store dedup is checkable: the engine must compute exactly
``unique_specs`` points no matter how the 8x10 request storm interleaves.

:func:`overlapping_workload` builds the per-client request lists (cheap
``exploit`` points distinguished by secret byte -- real end-to-end work,
small enough that the benchmark measures the service, not the simulator);
:func:`run_load` runs the storm and aggregates client-observed latency
percentiles with the server's own hit accounting.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .client import ServiceClient, ServiceError
from .stats import percentiles


def overlapping_workload(
    clients: int,
    per_client: int,
    overlap: float = 0.5,
    *,
    exploit: str = "spectre_v1",
) -> Tuple[List[List[Dict[str, object]]], int]:
    """Per-client spec-dict lists with a shared fraction; returns unique count.

    ``overlap`` of every client's ``per_client`` requests come from one
    shared pool (identical JSON bodies across clients -- the dedup bait);
    the rest are private to the client.  Each client interleaves shared and
    private specs so in-flight attachment and store hits both get exercised.
    """
    if not 0.0 <= overlap <= 1.0:
        raise ValueError(f"overlap must be in [0, 1], got {overlap}")
    shared_count = round(per_client * overlap)
    private_count = per_client - shared_count

    def spec(secret: int) -> Dict[str, object]:
        return {"kind": "exploit", "params": {"exploit": exploit, "secret": secret}}

    shared = [spec(0x10 + index) for index in range(shared_count)]
    workload: List[List[Dict[str, object]]] = []
    for client in range(clients):
        private = [
            spec(0x1000 + client * private_count + index)
            for index in range(private_count)
        ]
        requests: List[Dict[str, object]] = []
        taken_shared = taken_private = 0
        for index in range(per_client):  # interleave: shared, private, ...
            want_shared = index % 2 == 0
            if (want_shared or taken_private >= private_count) and (
                taken_shared < shared_count
            ):
                requests.append(shared[taken_shared])
                taken_shared += 1
            else:
                requests.append(private[taken_private])
                taken_private += 1
        workload.append(requests)
    unique = shared_count + clients * private_count
    return workload, unique


@dataclass
class LoadReport:
    """What one load-generator run observed."""

    clients: int
    requests: int
    unique_specs: int
    completed: int = 0
    rejected: int = 0
    errors: int = 0
    elapsed_seconds: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    hits: Dict[str, int] = field(default_factory=dict)
    #: Per-hit-source latency breakdown: ``{source: {count, p50_ms, p99_ms,
    #: mean_ms}}``.  The aggregate p50/p99 above mixes sub-millisecond
    #: cache hits with multi-second cold computes; splitting by source
    #: (computed / memory / disk / in-flight) is what makes either number
    #: actionable.
    latency_by_source: Dict[str, Dict[str, float]] = field(default_factory=dict)
    computed: int = 0
    dedup_hit_rate: float = 0.0
    server_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def requests_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.completed / self.elapsed_seconds


def run_load(
    url: str,
    workload: List[List[Dict[str, object]]],
    unique_specs: int,
    *,
    timeout: float = 120.0,
    start_barrier: Optional[threading.Barrier] = None,
) -> LoadReport:
    """Fire every client's requests concurrently; aggregate what they saw."""
    report = LoadReport(
        clients=len(workload),
        requests=sum(len(requests) for requests in workload),
        unique_specs=unique_specs,
    )
    latencies: List[float] = []
    by_source: Dict[str, List[float]] = {}
    lock = threading.Lock()
    barrier = start_barrier or threading.Barrier(len(workload))

    def client_body(requests: List[Dict[str, object]]) -> None:
        client = ServiceClient(url, timeout=timeout)
        local_latencies: List[float] = []
        local_by_source: Dict[str, List[float]] = {}
        local_hits: Dict[str, int] = {}
        completed = rejected = errors = 0
        barrier.wait()
        for payload in requests:
            try:
                envelope = client.run_with_retry(payload)
            except ServiceError as exc:
                if exc.status == 503:
                    rejected += 1
                else:
                    errors += 1
                continue
            except OSError:
                errors += 1
                continue
            completed += 1
            latency = envelope["latency_ms"]["total"]
            local_latencies.append(latency)
            hit = envelope.get("hit", "unknown")
            local_hits[hit] = local_hits.get(hit, 0) + 1
            local_by_source.setdefault(hit, []).append(latency)
        with lock:
            latencies.extend(local_latencies)
            report.completed += completed
            report.rejected += rejected
            report.errors += errors
            for hit, count in local_hits.items():
                report.hits[hit] = report.hits.get(hit, 0) + count
            for hit, samples in local_by_source.items():
                by_source.setdefault(hit, []).extend(samples)

    threads = [
        threading.Thread(target=client_body, args=(requests,), daemon=True)
        for requests in workload
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout)
    report.elapsed_seconds = time.perf_counter() - started
    report.p50_ms, report.p99_ms = percentiles(latencies, (0.50, 0.99))
    for source, samples in sorted(by_source.items()):
        p50, p99 = percentiles(samples, (0.50, 0.99))
        report.latency_by_source[source] = {
            "count": len(samples),
            "p50_ms": round(p50, 3),
            "p99_ms": round(p99, 3),
            "mean_ms": round(sum(samples) / len(samples), 3),
        }
    report.computed = report.hits.get("computed", 0)
    if report.completed:
        report.dedup_hit_rate = 1.0 - report.computed / report.completed
    try:
        report.server_stats = ServiceClient(url, timeout=timeout).stats()
    except (OSError, ServiceError):
        report.server_stats = {}
    return report
