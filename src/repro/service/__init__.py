"""The asyncio analysis service: many clients, one shared engine.

The "millions of users" direction of the ROADMAP made concrete.  A
:class:`~repro.service.server.AnalysisService` accepts JSON-encoded
:class:`~repro.scenario.ScenarioSpec` requests over plain HTTP/1.1 (stdlib
sockets only -- no new dependencies) and multiplexes them over **one**
shared :class:`~repro.engine.Engine` and **one**
:class:`~repro.store.DiskStore`:

* **single-flight dedup** -- concurrent requests whose specs share a
  content hash attach to one in-flight entry; the spec computes once and
  every waiter receives the same ``Result`` envelope.
* **micro-batching** -- admitted specs are coalesced into explicit
  :class:`~repro.scenario.ScenarioGrid` batches and executed through
  :meth:`Engine.iter_grid`, so each completed point is streamed back to its
  waiters (and checkpointed through the store) the moment it lands.
* **backpressure** -- a bounded admission queue; overflow is rejected with
  ``503`` and a ``Retry-After`` hint instead of growing without bound.
* **observability** -- every response envelope carries a request id, its
  queue / compute / total latency and the hit source
  (``memory`` / ``disk`` / ``in-flight`` / ``computed``); ``/stats``
  aggregates hit-rate, queue depth, in-flight count and p50/p99 latency,
  and the same counters surface in ``Engine.stats()["service"]``.

Modules: :mod:`~repro.service.protocol` (wire format + error envelopes),
:mod:`~repro.service.server` (the service, graceful drain, the blocking
``serve()`` loop behind ``repro serve``), :mod:`~repro.service.client`
(stdlib client behind ``repro request``), :mod:`~repro.service.stats`
(latency/hit accounting) and :mod:`~repro.service.loadgen` (the concurrent
load generator behind the ``service-throughput`` benchmark).
"""

from .client import ServiceClient, ServiceError
from .protocol import (
    BadRequest,
    Overloaded,
    PayloadTooLarge,
    RequestError,
    decode_spec_payload,
)
from .server import AnalysisService, ServiceConfig, ServiceThread, serve
from .stats import ServiceStats

__all__ = [
    "AnalysisService",
    "BadRequest",
    "Overloaded",
    "PayloadTooLarge",
    "RequestError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceStats",
    "ServiceThread",
    "decode_spec_payload",
    "serve",
]
