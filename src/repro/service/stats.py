"""Request accounting for the analysis service.

One :class:`ServiceStats` per service instance, mutated only on the event
loop thread (admission, completion and rejection all happen there), read by
``/stats`` and -- through :meth:`Engine.register_stats` -- by
``Engine.stats()["service"]``.

Since the observability refactor the counters live on a
:class:`~repro.obs.metrics.MetricsRegistry` (rendered as Prometheus text
by the service's ``/metrics`` endpoint); the legacy attribute reads
(``stats_view.requests`` ...) and the :meth:`counters` / :meth:`snapshot`
payloads are compatibility shims synthesized from the same series.

Two views:

* :meth:`counters` -- the monotonic counters (requests / completed /
  rejected / errors, hits per source, batch shape).  This is what lands in
  ``Engine.stats()["service"]``, so :meth:`Engine.stats_delta` can window
  it like every other engine counter.
* :meth:`snapshot` -- the operator view served by ``/stats``: the counters
  plus derived gauges (``hit_rate``, queue ``depth``, ``inflight``) and
  p50/p99 over a bounded ring of recent request latencies (plus the ring's
  sample count and capacity, so the percentiles are interpretable).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..obs.metrics import MetricsRegistry

#: Hit sources a completed request can report.  ``computed`` is the only
#: one that cost engine work; the other three are the dedup/cache wins the
#: whole service exists for.
HIT_SOURCES = ("computed", "memory", "disk", "in-flight")


def _nearest_rank(ordered: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a pre-sorted non-empty sample list.

    ``ceil(fraction * n) - 1`` is the classical nearest-rank index: exact at
    the edges (``0.0`` -> smallest sample, ``1.0`` -> largest) and correct
    for tiny windows -- a 1-sample window answers that sample for every
    fraction, and the p50 of two samples is the *lower* one (the old
    round-half-up formula answered the higher).
    """
    index = max(0, math.ceil(fraction * len(ordered)) - 1)
    return ordered[index]


def _check_fraction(fraction: float) -> None:
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"percentile fraction must be in [0, 1], got {fraction!r}")


class LatencyWindow:
    """A bounded ring of recent latency samples (milliseconds)."""

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = max(1, capacity)
        self._samples: List[float] = []
        self._cursor = 0

    def add(self, value: float) -> None:
        if len(self._samples) < self.capacity:
            self._samples.append(value)
        else:
            self._samples[self._cursor] = value
        self._cursor = (self._cursor + 1) % self.capacity

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, fraction: float) -> float:
        """The nearest-rank percentile of the window; 0.0 when empty.

        ``fraction`` outside ``[0, 1]`` raises :class:`ValueError` -- an
        out-of-range fraction silently answering the max sample made bad
        dashboards look plausible.
        """
        _check_fraction(fraction)
        if not self._samples:
            return 0.0
        return _nearest_rank(sorted(self._samples), fraction)


def percentiles(samples: Sequence[float], fractions: Sequence[float]) -> List[float]:
    """Nearest-rank percentiles of an arbitrary sample list (0.0 when empty)."""
    for fraction in fractions:
        _check_fraction(fraction)
    if not samples:
        return [0.0 for _ in fractions]
    ordered = sorted(samples)
    return [_nearest_rank(ordered, fraction) for fraction in fractions]


class ServiceStats:
    """Counters + latency ring for one service instance.

    ``registry`` plugs the counters into an existing
    :class:`~repro.obs.metrics.MetricsRegistry` (the service passes its
    own, scraped by ``/metrics``); by default the instance owns a private
    one, so standalone use keeps working unchanged.
    """

    def __init__(
        self,
        latency_window: int = 4096,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._requests = self.registry.counter(
            "repro_service_requests_total",
            "Admitted or attached requests (rejections not included).",
        )
        self._completed = self.registry.counter(
            "repro_service_completed_total",
            "Requests whose waiter received an envelope.",
        )
        self._rejected = self.registry.counter(
            "repro_service_rejected_total",
            "Backpressure rejections (queue full / draining).",
        )
        self._errors = self.registry.counter(
            "repro_service_errors_total",
            "Entries whose executor raised (rendered as 500 envelopes).",
        )
        self._batches = self.registry.counter(
            "repro_service_batches_total", "Micro-batches dispatched."
        )
        self._batched_points = self.registry.counter(
            "repro_service_batched_points_total",
            "Points carried by dispatched batches.",
        )
        self._hits = self.registry.counter(
            "repro_service_hits_total",
            "Completed requests by hit source.",
            labelnames=("source",),
        )
        for source in HIT_SOURCES:
            self._hits.touch(source=source)
        self._max_batch = self.registry.gauge(
            "repro_service_max_batch_points",
            "Largest batch dispatched so far.",
        )
        self._latency_hist = self.registry.histogram(
            "repro_service_request_latency_ms",
            "End-to-end request latency in milliseconds.",
        )
        self._phase_ms = self.registry.counter(
            "repro_service_phase_ms_total",
            "Cumulative milliseconds spent per request phase.",
            labelnames=("phase",),
        )
        for phase in ("queue", "compute"):
            self._phase_ms.touch(phase=phase)
        self._latency = LatencyWindow(latency_window)

    # -- legacy attribute shims ----------------------------------------
    @property
    def requests(self) -> int:
        return self._requests.value()

    @property
    def completed(self) -> int:
        return self._completed.value()

    @property
    def rejected(self) -> int:
        return self._rejected.value()

    @property
    def errors(self) -> int:
        return self._errors.value()

    @property
    def batches(self) -> int:
        return self._batches.value()

    @property
    def batched_points(self) -> int:
        return self._batched_points.value()

    @property
    def max_batch(self) -> int:
        return self._max_batch.value()

    @property
    def hits(self) -> Dict[str, int]:
        return {source: self._hits.value(source=source) for source in HIT_SOURCES}

    @property
    def queue_ms_total(self) -> float:
        return self._phase_ms.value(phase="queue")

    @property
    def compute_ms_total(self) -> float:
        return self._phase_ms.value(phase="compute")

    # -- recording (event-loop thread only) ----------------------------
    def record_request(self) -> None:
        self._requests.inc()

    def record_rejection(self) -> None:
        self._rejected.inc()

    def record_error(self) -> None:
        self._errors.inc()

    def record_hit(self, source: str) -> None:
        self._hits.inc(source=source)

    def record_batch(self, points: int) -> None:
        self._batches.inc()
        self._batched_points.inc(points)
        if points > self._max_batch.value():
            self._max_batch.set(points)

    def record_completion(self, queue_ms: float, compute_ms: float, total_ms: float) -> None:
        self._completed.inc()
        self._phase_ms.inc(queue_ms, phase="queue")
        self._phase_ms.inc(compute_ms, phase="compute")
        self._latency_hist.observe(total_ms)
        self._latency.add(total_ms)

    # -- reading -------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of admitted requests served without a fresh compute."""
        requests = self.requests
        if requests <= 0:
            return 0.0
        return 1.0 - self._hits.value(source="computed") / requests

    def counters(self) -> Dict[str, object]:
        """The monotonic counters (``Engine.stats()["service"]``)."""
        return {
            "requests": self.requests,
            "completed": self.completed,
            "rejected": self.rejected,
            "errors": self.errors,
            "batches": self.batches,
            "batched_points": self.batched_points,
            "max_batch": self.max_batch,
            "hits": dict(self.hits),
        }

    def snapshot(self, *, depth: int = 0, inflight: int = 0) -> Dict[str, object]:
        """The operator view: counters + derived gauges + latency percentiles."""
        report = self.counters()
        completed = self.completed
        report.update(
            {
                "hit_rate": round(self.hit_rate, 6),
                "depth": depth,
                "inflight": inflight,
                "latency_ms": {
                    "p50": round(self._latency.percentile(0.50), 3),
                    "p99": round(self._latency.percentile(0.99), 3),
                    "samples": len(self._latency),
                    "window": self._latency.capacity,
                    "queue_mean": round(
                        self.queue_ms_total / completed, 3
                    ) if completed else 0.0,
                    "compute_mean": round(
                        self.compute_ms_total / completed, 3
                    ) if completed else 0.0,
                },
            }
        )
        return report
