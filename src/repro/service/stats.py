"""Request accounting for the analysis service.

One :class:`ServiceStats` per service instance, mutated only on the event
loop thread (admission, completion and rejection all happen there), read by
``/stats`` and -- through :meth:`Engine.register_stats` -- by
``Engine.stats()["service"]``.

Two views:

* :meth:`counters` -- the monotonic counters (requests / completed /
  rejected / errors, hits per source, batch shape).  This is what lands in
  ``Engine.stats()["service"]``, so :meth:`Engine.stats_delta` can window
  it like every other engine counter.
* :meth:`snapshot` -- the operator view served by ``/stats``: the counters
  plus derived gauges (``hit_rate``, queue ``depth``, ``inflight``) and
  p50/p99 over a bounded ring of recent request latencies.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

#: Hit sources a completed request can report.  ``computed`` is the only
#: one that cost engine work; the other three are the dedup/cache wins the
#: whole service exists for.
HIT_SOURCES = ("computed", "memory", "disk", "in-flight")


class LatencyWindow:
    """A bounded ring of recent latency samples (milliseconds)."""

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = max(1, capacity)
        self._samples: List[float] = []
        self._cursor = 0

    def add(self, value: float) -> None:
        if len(self._samples) < self.capacity:
            self._samples.append(value)
        else:
            self._samples[self._cursor] = value
        self._cursor = (self._cursor + 1) % self.capacity

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, fraction: float) -> float:
        """The nearest-rank percentile of the window; 0.0 when empty."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
        return ordered[rank]


def percentiles(samples: Sequence[float], fractions: Sequence[float]) -> List[float]:
    """Nearest-rank percentiles of an arbitrary sample list (0.0 when empty)."""
    if not samples:
        return [0.0 for _ in fractions]
    ordered = sorted(samples)
    last = len(ordered) - 1
    return [ordered[min(last, int(f * last + 0.5))] for f in fractions]


class ServiceStats:
    """Counters + latency ring for one service instance."""

    def __init__(self, latency_window: int = 4096) -> None:
        #: Admitted or attached requests (rejected ones are *not* requests
        #: that entered the system; they count under ``rejected``).
        self.requests = 0
        #: Requests whose waiter received an envelope.
        self.completed = 0
        #: Backpressure rejections (queue full / draining).
        self.rejected = 0
        #: Entries whose executor raised (rendered as 500 envelopes).
        self.errors = 0
        #: Batches dispatched and the points they carried.
        self.batches = 0
        self.batched_points = 0
        self.max_batch = 0
        self.hits: Dict[str, int] = {source: 0 for source in HIT_SOURCES}
        self.queue_ms_total = 0.0
        self.compute_ms_total = 0.0
        self._latency = LatencyWindow(latency_window)

    # -- recording (event-loop thread only) ----------------------------
    def record_hit(self, source: str) -> None:
        self.hits[source] = self.hits.get(source, 0) + 1

    def record_batch(self, points: int) -> None:
        self.batches += 1
        self.batched_points += points
        self.max_batch = max(self.max_batch, points)

    def record_completion(self, queue_ms: float, compute_ms: float, total_ms: float) -> None:
        self.completed += 1
        self.queue_ms_total += queue_ms
        self.compute_ms_total += compute_ms
        self._latency.add(total_ms)

    # -- reading -------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of admitted requests served without a fresh compute."""
        if self.requests <= 0:
            return 0.0
        return 1.0 - self.hits.get("computed", 0) / self.requests

    def counters(self) -> Dict[str, object]:
        """The monotonic counters (``Engine.stats()["service"]``)."""
        return {
            "requests": self.requests,
            "completed": self.completed,
            "rejected": self.rejected,
            "errors": self.errors,
            "batches": self.batches,
            "batched_points": self.batched_points,
            "max_batch": self.max_batch,
            "hits": dict(self.hits),
        }

    def snapshot(self, *, depth: int = 0, inflight: int = 0) -> Dict[str, object]:
        """The operator view: counters + derived gauges + latency percentiles."""
        report = self.counters()
        report.update(
            {
                "hit_rate": round(self.hit_rate, 6),
                "depth": depth,
                "inflight": inflight,
                "latency_ms": {
                    "p50": round(self._latency.percentile(0.50), 3),
                    "p99": round(self._latency.percentile(0.99), 3),
                    "samples": len(self._latency),
                    "queue_mean": round(
                        self.queue_ms_total / self.completed, 3
                    ) if self.completed else 0.0,
                    "compute_mean": round(
                        self.compute_ms_total / self.completed, 3
                    ) if self.completed else 0.0,
                },
            }
        )
        return report
