"""A stdlib client for the analysis service (``repro request``'s engine).

Pure ``http.client`` -- no dependencies, safe to use from threads (each
request opens its own connection, mirroring the server's one-request-per-
connection protocol)::

    client = ServiceClient("http://127.0.0.1:8377")
    envelope = client.run({"kind": "simulate", "params": {"attack": "spectre_v1"}})
    print(envelope["hit"], envelope["result"]["ok"])

Error envelopes (4xx/5xx) raise :class:`ServiceError` carrying the decoded
envelope, the HTTP status and the server's ``Retry-After`` hint when one
was sent.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Dict, Optional, Union

from ..scenario import ScenarioSpec


class ServiceError(RuntimeError):
    """A non-200 response from the service."""

    def __init__(
        self,
        status: int,
        envelope: Dict[str, object],
        retry_after: Optional[float] = None,
    ) -> None:
        error = envelope.get("error") if isinstance(envelope, dict) else None
        message = (
            error.get("message") if isinstance(error, dict) else None
        ) or f"service returned HTTP {status}"
        super().__init__(message)
        self.status = status
        self.envelope = envelope
        self.retry_after = retry_after

    @property
    def code(self) -> Optional[str]:
        error = self.envelope.get("error") if isinstance(self.envelope, dict) else None
        return error.get("code") if isinstance(error, dict) else None


class ServiceClient:
    """Blocking client over one service base URL."""

    def __init__(self, url: str, timeout: float = 120.0) -> None:
        parsed = urllib.parse.urlsplit(url if "//" in url else f"http://{url}")
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme {parsed.scheme!r} (http only)")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self.timeout = timeout

    # -- raw transport (also the fuzz harness's entry point) -------------
    def post_bytes(
        self, path: str, body: bytes, content_length: Optional[int] = None
    ) -> Dict[str, object]:
        """POST raw bytes; returns the decoded envelope or raises ServiceError.

        ``content_length`` overrides the header (tests use it to lie about
        the body size and probe the 413 path without shipping megabytes).
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.putrequest("POST", path)
            connection.putheader("Content-Type", "application/json")
            connection.putheader(
                "Content-Length",
                str(len(body) if content_length is None else content_length),
            )
            connection.endheaders()
            connection.send(body)
            return self._read(connection)
        finally:
            connection.close()

    def get(self, path: str) -> Dict[str, object]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request("GET", path)
            return self._read(connection)
        finally:
            connection.close()

    @staticmethod
    def _read(connection: http.client.HTTPConnection) -> Dict[str, object]:
        response = connection.getresponse()
        raw = response.read()
        try:
            envelope = json.loads(raw.decode("utf-8"))
        except ValueError:
            envelope = {"ok": False, "error": {"message": raw.decode("latin-1")}}
        if response.status != 200:
            retry_after = response.getheader("Retry-After")
            raise ServiceError(
                response.status,
                envelope,
                retry_after=float(retry_after) if retry_after else None,
            )
        return envelope

    # -- the API ---------------------------------------------------------
    def run(
        self, spec: Union[ScenarioSpec, Dict[str, object]]
    ) -> Dict[str, object]:
        """Submit one spec; returns the response envelope."""
        payload = spec.to_dict() if isinstance(spec, ScenarioSpec) else spec
        return self.post_bytes("/run", json.dumps(payload).encode("utf-8"))

    def run_with_retry(
        self,
        spec: Union[ScenarioSpec, Dict[str, object]],
        *,
        attempts: int = 5,
        backoff: float = 0.05,
    ) -> Dict[str, object]:
        """:meth:`run`, honoring 503 ``Retry-After`` hints up to ``attempts``."""
        last: Optional[ServiceError] = None
        for attempt in range(attempts):
            try:
                return self.run(spec)
            except ServiceError as exc:
                if exc.status != 503:
                    raise
                last = exc
                delay = exc.retry_after or backoff * (2 ** attempt)
                time.sleep(min(delay, 2.0))
        assert last is not None
        raise last

    def stats(self) -> Dict[str, object]:
        return self.get("/stats")

    def metrics(self) -> str:
        """Scrape ``/metrics``: the raw Prometheus text document."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            raw = response.read()
            if response.status != 200:
                raise ServiceError(
                    response.status,
                    {"ok": False, "error": {"message": raw.decode("latin-1")}},
                )
            return raw.decode("utf-8")
        finally:
            connection.close()

    def healthy(self) -> bool:
        try:
            return bool(self.get("/healthz").get("ok"))
        except (OSError, ServiceError):
            return False

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Poll ``/healthz`` until the server answers (startup barrier)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.healthy():
                return
            time.sleep(0.05)
        raise TimeoutError(f"service at {self.host}:{self.port} never became ready")
