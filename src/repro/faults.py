"""Deterministic fault injection for the fault-tolerant grid pipeline.

Robustness code that is only exercised by real crashes is untestable, so
this module provides *seeded, reproducible* failures that thread through
:class:`~repro.engine.Engine` (``Engine(faults=plan)``) and the CLI
(``repro run --faults plan.json``):

* ``exception`` -- the executing engine raises :class:`FaultInjected`
  before the point's executor runs (a worker that dies loudly).
* ``hang`` -- the executing engine sleeps ``hang_seconds`` before the
  executor runs (a worker that wedges; pair with
  :class:`~repro.engine.FailurePolicy` timeouts).
* ``crash`` -- the executing *process* SIGKILLs itself (a worker lost to
  the OOM killer or a segfault).  Only meaningful under a process pool:
  injected into a serial engine it kills that process, which is exactly
  what the two-subprocess kill/resume tests use it for.
* ``corrupt`` / ``partial_write`` -- the artifact store scribbles over or
  truncates the entry it just persisted (a torn write surviving a power
  cut), via :class:`FaultyDiskStore`.

Whether a fault fires for a given grid point is a pure function of the
plan ``seed``, the fault's position in the plan and the point's
``content_key()`` -- the same plan hits the same points in every process
and on every retry.  Three selectors compose per fault:

* ``match`` -- substring of the spec's content key (e.g.
  ``"attack='spectre_v2'"`` pins one grid point).
* ``rate`` -- fraction of points hit, decided by hashing (seed, index,
  key); ``1.0`` means every matched point.
* ``count`` -- at most this many firings.  Counting is backed by token
  files under ``state_dir`` so it holds across processes *and* retries
  (claim-one-token = fire-once); without a ``state_dir`` the count is
  per-plan-instance and resets at every pickle boundary, which makes a
  worker-side fault fire on every retry -- pass ``state_dir`` for
  heal-after-N-attempts scenarios.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple

from .obs.metrics import GLOBAL_REGISTRY
from .store import DiskStore

#: Injections actually fired, by fault kind -- on the process-wide
#: registry (a plan has no owning session), so a service scrape shows
#: how many faults the chaos plan really delivered.
_FAULTS_FIRED = GLOBAL_REGISTRY.counter(
    "repro_faults_fired_total",
    "Deterministic fault injections fired, by fault kind.",
    labelnames=("kind",),
)

#: Fault kinds injected at the execution site (engine, before a point's
#: executor runs) vs. at the artifact-store write site.
POINT_KINDS = frozenset({"exception", "hang", "crash"})
STORE_KINDS = frozenset({"corrupt", "partial_write"})


class FaultInjected(RuntimeError):
    """The failure raised by an ``exception`` fault (so tests can tell an
    injected fault from a genuine bug)."""


@dataclass(frozen=True)
class FaultSpec:
    """One seeded injector.

    ``kind`` is one of :data:`POINT_KINDS` | :data:`STORE_KINDS`;
    ``match`` / ``rate`` / ``count`` select the firing points (all
    composable, see the module docstring); ``hang_seconds`` parameterizes
    ``hang`` faults.
    """

    kind: str
    match: Optional[str] = None
    rate: float = 1.0
    count: Optional[int] = None
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        known = POINT_KINDS | STORE_KINDS
        if self.kind not in known:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(sorted(known))}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate!r}")
        if self.count is not None and self.count < 0:
            raise ValueError(f"fault count must be >= 0, got {self.count!r}")

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind}
        if self.match is not None:
            out["match"] = self.match
        if self.rate != 1.0:
            out["rate"] = self.rate
        if self.count is not None:
            out["count"] = self.count
        if self.kind == "hang":
            out["hang_seconds"] = self.hang_seconds
        return out

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "FaultSpec":
        known = {"kind", "match", "rate", "count", "hang_seconds"}
        extra = set(raw) - known
        if extra:
            raise ValueError(
                f"unknown fault field(s) {', '.join(sorted(extra))}; "
                f"allowed: {', '.join(sorted(known))}"
            )
        if "kind" not in raw:
            raise ValueError("a fault needs a 'kind'")
        return cls(
            kind=str(raw["kind"]),
            match=None if raw.get("match") is None else str(raw["match"]),
            rate=float(raw.get("rate", 1.0)),
            count=None if raw.get("count") is None else int(raw["count"]),
            hang_seconds=float(raw.get("hang_seconds", 30.0)),
        )


@dataclass
class FaultPlan:
    """A seeded, picklable set of :class:`FaultSpec` injectors.

    The plan crosses the process boundary with the work (workers fire
    their own faults), so everything here must pickle; the in-memory
    token counts deliberately do not survive that trip (see the module
    docstring on ``count`` vs ``state_dir``).
    """

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0
    state_dir: Optional[str] = None
    _local_tokens: Dict[int, int] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __init__(
        self,
        faults: Iterable[FaultSpec] = (),
        seed: int = 0,
        state_dir: Optional[object] = None,
    ) -> None:
        object.__setattr__(self, "faults", tuple(faults))
        object.__setattr__(self, "seed", int(seed))
        object.__setattr__(
            self, "state_dir", None if state_dir is None else str(state_dir)
        )
        object.__setattr__(self, "_local_tokens", {})

    # The mutable token counts are process-local instruments, not plan
    # identity: a plan shipped to a worker starts with fresh credits (the
    # documented count-vs-state_dir contract).
    def __getstate__(self) -> Dict[str, object]:
        return {
            "faults": self.faults,
            "seed": self.seed,
            "state_dir": self.state_dir,
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        object.__setattr__(self, "faults", state["faults"])
        object.__setattr__(self, "seed", state["seed"])
        object.__setattr__(self, "state_dir", state["state_dir"])
        object.__setattr__(self, "_local_tokens", {})

    # -- selection ---------------------------------------------------------
    def _chance(self, index: int, key: str) -> float:
        digest = hashlib.sha256(
            f"{self.seed}:{index}:{key}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def _claim_token(self, index: int, spec: FaultSpec) -> bool:
        """One firing credit, exactly ``spec.count`` of which exist.

        With a ``state_dir`` the credits are ``O_CREAT|O_EXCL`` token
        files -- atomic across processes, durable across retries."""
        if spec.count is None:
            return True
        if self.state_dir is None:
            used = self._local_tokens.get(index, 0)
            if used >= spec.count:
                return False
            self._local_tokens[index] = used + 1
            return True
        directory = Path(self.state_dir)
        directory.mkdir(parents=True, exist_ok=True)
        for slot in range(spec.count):
            token = directory / f"fault-{index}-{slot}.token"
            try:
                fd = os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            except OSError:
                return False
            os.close(fd)
            return True
        return False

    def _applies(self, index: int, spec: FaultSpec, key: str) -> bool:
        if spec.match is not None and spec.match not in key:
            return False
        if spec.rate < 1.0 and self._chance(index, key) >= spec.rate:
            return False
        return self._claim_token(index, spec)

    # -- firing ------------------------------------------------------------
    def fire_point(self, key: str) -> None:
        """Inject any matching point fault for the spec about to execute."""
        for index, spec in enumerate(self.faults):
            if spec.kind not in POINT_KINDS or not self._applies(index, spec, key):
                continue
            _FAULTS_FIRED.inc(kind=spec.kind)
            if spec.kind == "exception":
                raise FaultInjected(f"injected worker exception for {key}")
            if spec.kind == "hang":
                time.sleep(spec.hang_seconds)
            elif spec.kind == "crash":
                os.kill(os.getpid(), signal.SIGKILL)

    def store_decision(self, key: str) -> Optional[str]:
        """The store fault to apply to a freshly written entry, if any."""
        for index, spec in enumerate(self.faults):
            if spec.kind in STORE_KINDS and self._applies(index, spec, key):
                _FAULTS_FIRED.inc(kind=spec.kind)
                return spec.kind
        return None

    @property
    def has_store_faults(self) -> bool:
        return any(spec.kind in STORE_KINDS for spec in self.faults)

    # -- (de)serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.faults],
        }
        if self.state_dir is not None:
            out["state_dir"] = self.state_dir
        return out

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "FaultPlan":
        known = {"seed", "state_dir", "faults"}
        extra = set(raw) - known
        if extra:
            raise ValueError(
                f"unknown fault-plan field(s) {', '.join(sorted(extra))}; "
                f"allowed: {', '.join(sorted(known))}"
            )
        faults = raw.get("faults", [])
        if not isinstance(faults, list):
            raise ValueError("'faults' must be a list of fault objects")
        return cls(
            faults=tuple(FaultSpec.from_dict(item) for item in faults),
            seed=int(raw.get("seed", 0)),
            state_dir=raw.get("state_dir"),
        )


def load_fault_plan(path: object) -> FaultPlan:
    """Read a JSON fault plan (the CLI's ``--faults plan.json``)."""
    with open(path, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    if not isinstance(raw, dict):
        raise ValueError("a fault plan must be a JSON object")
    return FaultPlan.from_dict(raw)


class FaultyDiskStore(DiskStore):
    """A :class:`~repro.store.DiskStore` whose writes can be sabotaged.

    ``corrupt`` replaces the just-persisted entry with garbage bytes;
    ``partial_write`` truncates it mid-stream -- both model a writer
    killed between ``write`` and a durable ``replace``.  The sabotage
    happens *after* the atomic publish, so readers exercise the
    corrupted-entry recovery path (delete + recompute), which is the
    property under test.

    Pickling intentionally degrades to a plain :class:`DiskStore` (the
    inherited ``__reduce__``): store faults are a parent-process
    instrument; worker engines rebuilt from a store ref stay healthy.
    """

    def __init__(
        self,
        root: Optional[object] = None,
        *,
        plan: FaultPlan,
        version: Optional[str] = None,
        max_entries: Optional[int] = 4096,
    ) -> None:
        super().__init__(root, version=version, max_entries=max_entries)
        self.plan = plan

    def put(self, key: str, value: object) -> bool:
        if not super().put(key, value):
            return False
        kind = self.plan.store_decision(key)
        if kind is None:
            return True
        path = self._path(key)
        try:
            blob = path.read_bytes()
            if kind == "partial_write":
                # Cut inside the pickle frame: always unreadable, never empty.
                path.write_bytes(blob[: max(1, len(blob) // 2)])
            else:  # corrupt
                garbage = hashlib.sha256(key.encode("utf-8")).digest()
                path.write_bytes(garbage * max(1, len(blob) // len(garbage)))
        except OSError:  # pragma: no cover - entry raced away mid-sabotage
            pass
        return True


def apply_store_faults(store: Optional[object], plan: Optional[FaultPlan]) -> Optional[object]:
    """Wrap a store with the plan's store faults, when both apply.

    Only :class:`DiskStore` has byte-level entries to sabotage; memory
    stores (and ``None``) pass through untouched.
    """
    if plan is None or not plan.has_store_faults:
        return store
    if isinstance(store, FaultyDiskStore) or not isinstance(store, DiskStore):
        return store
    return FaultyDiskStore(
        root=store.root,
        plan=plan,
        version=store.version,
        max_entries=store.max_entries,
    )
