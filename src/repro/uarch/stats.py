"""Execution statistics of the speculative pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class SimStats:
    """Counters collected during a simulation run."""

    cycles: int = 0
    instructions_retired: int = 0
    transient_instructions: int = 0
    speculative_windows: int = 0
    squashes: int = 0
    branch_predictions: int = 0
    branch_mispredictions: int = 0
    faults: int = 0
    faults_suppressed: int = 0
    speculative_loads: int = 0
    speculative_loads_blocked: int = 0
    speculative_fills: int = 0
    speculative_fills_rolled_back: int = 0
    store_bypasses: int = 0
    store_bypasses_blocked: int = 0
    fault_log: List[str] = field(default_factory=list)

    def record_fault(self, description: str, suppressed: bool) -> None:
        self.faults += 1
        if suppressed:
            self.faults_suppressed += 1
        self.fault_log.append(description)

    @property
    def misprediction_rate(self) -> float:
        if not self.branch_predictions:
            return 0.0
        return self.branch_mispredictions / self.branch_predictions

    def summary(self) -> Dict[str, int]:
        return {
            "cycles": self.cycles,
            "instructions_retired": self.instructions_retired,
            "transient_instructions": self.transient_instructions,
            "speculative_windows": self.speculative_windows,
            "squashes": self.squashes,
            "faults": self.faults,
            "speculative_loads": self.speculative_loads,
            "speculative_loads_blocked": self.speculative_loads_blocked,
            "store_bypasses": self.store_bypasses,
        }
