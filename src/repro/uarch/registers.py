"""Register state: general purpose, flags, special (MSR) and FPU registers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from ..isa.operands import ALL_REGISTERS, FLAGS, FP_REGISTERS, GP_REGISTERS

MASK64 = (1 << 64) - 1


class RegisterFile:
    """The architectural general-purpose register file (plus flags)."""

    def __init__(self) -> None:
        self._values: Dict[str, int] = {name: 0 for name in ALL_REGISTERS}
        #: Registers whose current value was produced by a long-latency
        #: operation (a cache miss); reading such a register delays the
        #: consumer -- this is what opens speculation windows.
        self._slow: Set[str] = set()

    def read(self, name: str) -> int:
        return self._values[name]

    def write(self, name: str, value: int, *, slow: bool = False) -> None:
        self._values[name] = value & MASK64
        if slow:
            self._slow.add(name)
        else:
            self._slow.discard(name)

    def is_slow(self, name: str) -> bool:
        return name in self._slow

    def any_slow(self, names) -> bool:
        return any(name in self._slow for name in names)

    def mark_ready(self, name: str) -> None:
        self._slow.discard(name)

    def snapshot(self) -> Tuple[Dict[str, int], Set[str]]:
        return dict(self._values), set(self._slow)

    def restore(self, snapshot: Tuple[Dict[str, int], Set[str]]) -> None:
        values, slow = snapshot
        self._values = dict(values)
        self._slow = set(slow)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._values)


@dataclass
class Flags:
    """The outcome of the most recent compare (lhs vs rhs)."""

    lhs: int = 0
    rhs: int = 0

    def evaluate(self, condition: str) -> bool:
        """Evaluate a branch condition against these flags."""
        unsigned_lhs, unsigned_rhs = self.lhs & MASK64, self.rhs & MASK64
        signed_lhs = unsigned_lhs - (1 << 64) if unsigned_lhs >> 63 else unsigned_lhs
        signed_rhs = unsigned_rhs - (1 << 64) if unsigned_rhs >> 63 else unsigned_rhs
        if condition == "ja":
            return unsigned_lhs > unsigned_rhs
        if condition == "jae":
            return unsigned_lhs >= unsigned_rhs
        if condition == "jb":
            return unsigned_lhs < unsigned_rhs
        if condition == "jbe":
            return unsigned_lhs <= unsigned_rhs
        if condition == "je":
            return unsigned_lhs == unsigned_rhs
        if condition == "jne":
            return unsigned_lhs != unsigned_rhs
        if condition == "jg":
            return signed_lhs > signed_rhs
        if condition == "jl":
            return signed_lhs < signed_rhs
        raise ValueError(f"unknown condition {condition!r}")


class SpecialRegisters:
    """Model-specific (system) registers, readable only in supervisor mode."""

    def __init__(self, values: Optional[Dict[int, int]] = None) -> None:
        self._values: Dict[int, int] = dict(values or {})

    def read(self, msr: int) -> int:
        return self._values.get(msr, 0)

    def write(self, msr: int, value: int) -> None:
        self._values[msr] = value & MASK64


class FPUState:
    """Floating-point register state with lazy context ownership (LazyFP)."""

    def __init__(self) -> None:
        self._values: Dict[str, int] = {name: 0 for name in FP_REGISTERS}
        #: Context id that owns the current FP state; a different running
        #: context triggers the (delayed) ownership check and fault.
        self.owner: int = 0

    def read(self, name: str) -> int:
        return self._values[name]

    def write(self, name: str, value: int) -> None:
        self._values[name] = value & MASK64

    def switch_owner(self, context: int, *, eager: bool = False) -> None:
        """Change the owning context.

        With ``eager`` switching the register values are cleared immediately
        (no stale state to leak); with lazy switching (the default, and the
        vulnerable behaviour) the old values stay until the first FP use.
        """
        self.owner = context
        if eager:
            for name in self._values:
                self._values[name] = 0
