"""Cycle-accurate, event-driven out-of-order timing core.

Why this subsystem exists
-------------------------
The paper models a speculative attack as a *race* on a dependency graph:
Theorem 1 says the covert send and the delayed authorization race exactly
when no path orders them.  The functional interpreter
(:class:`~repro.uarch.pipeline.SpeculativeCPU`) reproduces the *semantics* of
that race -- transient windows, rollback, persistent cache state -- but
counts windows in instructions, so it cannot say *when* the squash lands
relative to the transmit.  This package measures the race in cycles.

The event-queue design
----------------------
The timing plane is a Tomasulo machine driven by a single heap of
cycle-stamped events (:class:`~repro.uarch.timing.scheduler.EventScheduler`):

* instructions **dispatch** in order into a reorder buffer and a reservation
  -station pool, renaming their sources through a register alias table;
* an instruction **wakes up** only when a producer's completion event
  broadcasts on the common data bus -- there is no per-cycle re-scan of every
  in-flight instruction (the ROADMAP item this subsystem closes); idle
  stretches of a 200-cycle cache miss cost nothing because the scheduler
  jumps straight to the next event;
* completion events free reservation stations, retirement events drain the
  ROB in order, and both re-arm stalled dispatch in the same cycle;
* functional units and the broadcast bus are **contended resources** when the
  :class:`~repro.uarch.timing.scheduler.TimingModel` bounds them: each op
  kind issues to one of four port pools (ALU / load-store / branch / mul,
  :func:`~repro.uarch.timing.ops.port_kind`), holds its port from issue to
  broadcast, and at most ``cdb_width`` results broadcast per cycle --
  arbitration is deterministic oldest-first in both schedulers.  Unbounded
  (``None``) limits reproduce the pre-contention semantics exactly, so the
  contended engine is a strict superset of the original one.

:class:`~repro.uarch.timing.scheduler.RescanScheduler` keeps the naive
cycle-by-cycle re-scanning loop alive as a measured baseline; both schedulers
are property-tested to produce identical cycle assignments -- with and
without contention -- and ``benchmarks/run_perf.py`` tracks the event
engine's speedup in ``BENCH_core.json``.

Port/CDB contention is what makes the Section II-C *functional-unit
contention* covert channels measurable: traces record per-op stall
provenance (``ready`` / ``port_stall`` / ``cdb_stall``) and per-cycle port
occupancy, :class:`~repro.channels.contention.ContentionChannel` transmits
through the occupancy delta, and ``Engine.ablate_window`` sweeps ROB/RS/port
counts to reproduce the paper's window-length ablation in measured cycles.

How measured windows map onto TSG races
---------------------------------------
Each speculation window the functional plane opens becomes a
:class:`~repro.uarch.timing.trace.WindowTiming`:

* the window's *trigger* is the instruction whose delayed authorization the
  TSG models as the authorization/resolution vertex; its completion (plus an
  explicit resolution delay for permission/ownership checks that are not
  register dependencies) is the **resolve cycle**, and resolve + recovery
  penalty is the **squash cycle**;
* a transient load that touches a ``shared`` data symbol is the TSG's *send*
  vertex; the cycle its memory request issues is the **transmit cycle**
  (in-flight fills are not recalled by a squash -- the persistence property
  the paper builds covert channels from);
* ``transmit <= squash`` is the measured race outcome.  Theorem 1 predicts
  it equals the TSG verdict (send reachable from no authorization), and
  :func:`~repro.uarch.timing.validate.cross_validate` checks that for every
  attack in the registry.

Entry points
------------
:class:`TimingCPU` is a drop-in :class:`SpeculativeCPU` (same harness
helpers, same exploit corpus) whose :meth:`run` returns a
:class:`TimingResult` carrying the :class:`TimingTrace`.
``Engine.simulate`` / ``repro simulate`` expose it with content-hash caching
and sharded (attack x defense) sweeps.
"""

from .core import SCHEDULERS, TimingCPU, TimingResult
from .ops import (
    PORT_POOLS,
    DynamicOp,
    WindowRecord,
    instruction_kind,
    port_kind,
    window_kind,
)
from .scheduler import (
    CONTENDED_MODEL,
    DEFAULT_MODEL,
    SERIALIZED_MODEL,
    EventScheduler,
    RescanScheduler,
    Schedule,
    TimingModel,
)
from .trace import ScheduledOp, TimingTrace, TraceEvent, WindowTiming, build_trace

__all__ = [
    "CONTENDED_MODEL",
    "DEFAULT_MODEL",
    "DynamicOp",
    "EventScheduler",
    "PORT_POOLS",
    "RescanScheduler",
    "SCHEDULERS",
    "SERIALIZED_MODEL",
    "Schedule",
    "ScheduledOp",
    "TimingCPU",
    "TimingModel",
    "TimingResult",
    "TimingTrace",
    "TraceEvent",
    "WindowRecord",
    "WindowTiming",
    "build_trace",
    "instruction_kind",
    "port_kind",
    "window_kind",
]
