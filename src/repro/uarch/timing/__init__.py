"""Cycle-accurate, event-driven out-of-order timing core.

Why this subsystem exists
-------------------------
The paper models a speculative attack as a *race* on a dependency graph:
Theorem 1 says the covert send and the delayed authorization race exactly
when no path orders them.  The functional interpreter
(:class:`~repro.uarch.pipeline.SpeculativeCPU`) reproduces the *semantics* of
that race -- transient windows, rollback, persistent cache state -- but
counts windows in instructions, so it cannot say *when* the squash lands
relative to the transmit.  This package measures the race in cycles.

The event-queue design
----------------------
The timing plane is a Tomasulo machine driven by a single heap of
cycle-stamped events (:class:`~repro.uarch.timing.scheduler.EventScheduler`):

* instructions **dispatch** in order into a reorder buffer and a reservation
  -station pool, renaming their sources through a register alias table;
* an instruction **wakes up** only when a producer's completion event
  broadcasts on the common data bus -- there is no per-cycle re-scan of every
  in-flight instruction (the ROADMAP item this subsystem closes); idle
  stretches of a 200-cycle cache miss cost nothing because the scheduler
  jumps straight to the next event;
* completion events free reservation stations, retirement events drain the
  ROB in order, and both re-arm stalled dispatch in the same cycle.

:class:`~repro.uarch.timing.scheduler.RescanScheduler` keeps the naive
cycle-by-cycle re-scanning loop alive as a measured baseline; both schedulers
are property-tested to produce identical cycle assignments, and
``benchmarks/run_perf.py`` tracks the event engine's speedup in
``BENCH_core.json``.

How measured windows map onto TSG races
---------------------------------------
Each speculation window the functional plane opens becomes a
:class:`~repro.uarch.timing.trace.WindowTiming`:

* the window's *trigger* is the instruction whose delayed authorization the
  TSG models as the authorization/resolution vertex; its completion (plus an
  explicit resolution delay for permission/ownership checks that are not
  register dependencies) is the **resolve cycle**, and resolve + recovery
  penalty is the **squash cycle**;
* a transient load that touches a ``shared`` data symbol is the TSG's *send*
  vertex; the cycle its memory request issues is the **transmit cycle**
  (in-flight fills are not recalled by a squash -- the persistence property
  the paper builds covert channels from);
* ``transmit <= squash`` is the measured race outcome.  Theorem 1 predicts
  it equals the TSG verdict (send reachable from no authorization), and
  :func:`~repro.uarch.timing.validate.cross_validate` checks that for every
  attack in the registry.

Entry points
------------
:class:`TimingCPU` is a drop-in :class:`SpeculativeCPU` (same harness
helpers, same exploit corpus) whose :meth:`run` returns a
:class:`TimingResult` carrying the :class:`TimingTrace`.
``Engine.simulate`` / ``repro simulate`` expose it with content-hash caching
and sharded (attack x defense) sweeps.
"""

from .core import SCHEDULERS, TimingCPU, TimingResult
from .ops import DynamicOp, WindowRecord, instruction_kind, window_kind
from .scheduler import (
    DEFAULT_MODEL,
    EventScheduler,
    RescanScheduler,
    Schedule,
    TimingModel,
)
from .trace import ScheduledOp, TimingTrace, TraceEvent, WindowTiming, build_trace

__all__ = [
    "DEFAULT_MODEL",
    "DynamicOp",
    "EventScheduler",
    "RescanScheduler",
    "SCHEDULERS",
    "Schedule",
    "ScheduledOp",
    "TimingCPU",
    "TimingModel",
    "TimingResult",
    "TimingTrace",
    "TraceEvent",
    "WindowRecord",
    "WindowTiming",
    "build_trace",
    "instruction_kind",
    "window_kind",
]
