"""Cycle-accurate schedulers for the out-of-order timing plane.

Two interchangeable implementations of the same Tomasulo-style timing
semantics, sharing one deterministic specification:

* **dispatch** -- in program (dynamic) order, at most ``dispatch_width`` ops
  per cycle, stalling while the reorder buffer or the reservation-station
  pool is full.  Dispatch renames sources through the register alias table
  (RAT): each read maps to the youngest older op writing that register.
* **issue** -- an op is *data-ready* the cycle after its dispatch *and* the
  cycle after its last producer broadcasts (the common-data-bus broadcast
  takes one cycle).  A data-ready op still needs a free functional-unit port
  of its kind (:func:`~repro.uarch.timing.ops.port_kind`): when
  :class:`TimingModel` bounds a pool, at most that many ops of the pool
  execute concurrently, units are not pipelined (an op holds its port from
  issue until its broadcast), and contenders are arbitrated **oldest first**
  (lowest dynamic seq).  A port freed by a broadcast is reusable the same
  cycle.  Unbounded pools (``None``) never stall -- the pre-contention
  semantics.
* **complete** -- execution finishes ``max(1, latency)`` cycles after issue;
  memory ops carry the cache latency (hit or miss) measured by the
  functional front-end.  The result must then broadcast on the common data
  bus: with a bounded ``cdb_width`` at most that many ops complete per
  cycle, oldest first -- a finished op that loses arbitration keeps its
  reservation station *and* its port until it broadcasts.  Completion frees
  both and wakes dependents.
* **retire** -- in order from the ROB head, at most ``commit_width`` per
  cycle, the cycle after completion at the earliest.  Retirement frees the
  ROB entry.  Transient (speculation-window) ops flow through the same drain
  -- their "retirement" models the flush slot they occupy during recovery.
* **fences** serialize: a fence waits for every older in-flight op, and every
  younger op additionally waits for the fence.  Fences and nops need no
  execution port, but their completions do occupy broadcast slots (the ROB
  writeback port they share with everything else).

:class:`EventScheduler` is the production engine: a single heap of
cycle-stamped events (complete / retire-try / dispatch-try / issue) so each
simulated cycle only touches ops that actually wake up -- idle stretches of a
200-cycle cache miss cost nothing.  With an uncontended model it runs the
original unbounded fast path; any port/CDB bound switches it to the contended
path, which adds per-pool occupancy counters, oldest-first port queues and a
per-cycle CDB budget (losers re-arbitrate next cycle).  Both paths, and the
deliberately naive :class:`RescanScheduler` baseline (advance one cycle at a
time, re-scan every in-flight instruction), produce identical
:class:`Schedule` objects -- property-tested in
``tests/test_timing_scheduler.py`` -- so the event engine's speedup is
measured against a semantically equal oracle under contention too.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .ops import PORT_POOLS, DynamicOp, port_kind

#: Intra-cycle phase order shared by both schedulers: completions broadcast
#: (freeing reservation stations and ports), then the ROB head retires, then
#: stalled dispatch resumes (same-cycle reuse of freed entries), then woken
#: and port-granted ops issue.
_COMPLETE, _RETIRE, _DISPATCH, _ISSUE = 0, 1, 2, 3

#: TimingModel field holding the port count of each functional-unit pool.
_PORT_FIELDS = {pool: f"{pool}_ports" for pool in PORT_POOLS}


@dataclass(frozen=True)
class TimingModel:
    """Microarchitectural parameters of the timing plane.

    ``fault_resolution_delay`` and ``return_resolution_delay`` default to the
    uarch config's cache miss latency when ``None``: a delayed permission /
    ownership check (or the architectural return-address read the attacker
    flushed) resolves on the timescale of a memory round-trip, which is what
    makes the paper's race winnable in the first place.

    The ``*_ports`` fields bound the functional-unit pools of
    :data:`~repro.uarch.timing.ops.PORT_POOLS` and ``cdb_width`` bounds the
    completions broadcast per cycle; ``None`` (the default everywhere) means
    unbounded -- the pre-contention model.  Any bound makes the model
    :attr:`contended` and switches the schedulers to oldest-first port / CDB
    arbitration, which is what makes the Section II-C *functional-unit
    contention* covert channels measurable in cycles.
    """

    dispatch_width: int = 4
    commit_width: int = 4
    rob_size: int = 192
    rs_entries: int = 64
    #: Cycles between the authorization resolving and the recovery (flush +
    #: refetch) completing; covert sends issued before recovery completes
    #: still perturb the cache -- in-flight memory requests are not recalled.
    squash_penalty: int = 16
    fault_resolution_delay: Optional[int] = None
    return_resolution_delay: Optional[int] = None
    #: Per-pool functional-unit port counts (``None`` = unbounded).
    alu_ports: Optional[int] = None
    load_store_ports: Optional[int] = None
    branch_ports: Optional[int] = None
    mul_ports: Optional[int] = None
    #: Completion broadcasts per cycle on the common data bus (``None`` =
    #: unbounded).
    cdb_width: Optional[int] = None

    def __post_init__(self) -> None:
        for name in (*_PORT_FIELDS.values(), "cdb_width"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(
                    f"{name} must be None (unbounded) or >= 1, got {value}"
                )

    def resolution_delay(self, window_kind: str, miss_latency: int) -> int:
        """Extra cycles between trigger completion and authorization resolution."""
        if window_kind in ("branch", "indirect"):
            return 0  # carried by the trigger's own slow data dependency
        if window_kind == "return":
            delay = self.return_resolution_delay
        else:
            delay = self.fault_resolution_delay
        return miss_latency if delay is None else delay

    def port_limit(self, pool: Optional[str]) -> Optional[int]:
        """Port count of one functional-unit pool (``None`` = unbounded)."""
        if pool is None:
            return None
        return getattr(self, _PORT_FIELDS[pool])

    @property
    def contended(self) -> bool:
        """Whether any port pool or the CDB is a bounded (contended) resource."""
        return self.cdb_width is not None or any(
            getattr(self, name) is not None for name in _PORT_FIELDS.values()
        )


DEFAULT_MODEL = TimingModel()

#: A realistically contended reference core: two ALU and two load/store
#: ports keep memory-level parallelism alive (so Theorem 1 still agrees for
#: every registry attack), while the single branch/mul ports and the width-2
#: CDB make contention measurable.  Used by ``repro simulate --contended``
#: and the window-length ablation.
CONTENDED_MODEL = TimingModel(
    alu_ports=2, load_store_ports=2, branch_ports=1, mul_ports=1, cdb_width=2
)

#: The maximally serialized core: one port everywhere and a width-1 CDB.
#: Collapsing memory-level parallelism this way closes some races the TSG
#: says are winnable (e.g. Spectre v2's two overlapping misses serialize and
#: the transmit slips past the squash) -- the ablation sweeps it to show how
#: port counts move the measured window.
SERIALIZED_MODEL = TimingModel(
    alu_ports=1, load_store_ports=1, branch_ports=1, mul_ports=1, cdb_width=1
)


@dataclass
class Schedule:
    """Per-op cycle assignments produced by a scheduler.

    ``ready`` stamps the cycle each op became data-ready (dispatched and all
    producers broadcast); ``issue - ready`` is therefore the op's port-stall
    time and ``complete - issue - max(1, latency)`` its CDB-stall time --
    the stall provenance the trace layer reports.  Hand-built schedules may
    omit it (``None``); both schedulers always fill it.
    """

    dispatch: List[int]
    issue: List[int]
    complete: List[int]
    retire: List[int]
    ready: Optional[List[int]] = None

    @property
    def cycles(self) -> int:
        """Total cycles simulated (last retirement)."""
        return max(self.retire) + 1 if self.retire else 0


def _dependencies(
    op: DynamicOp, rat: Dict[str, int], last_fence: Optional[int]
) -> Set[int]:
    """Producer seqs of ``op`` at dispatch time (register renaming + fences)."""
    deps = {rat[name] for name in op.reads if name in rat}
    if last_fence is not None:
        deps.add(last_fence)
    return deps


class EventScheduler:
    """Event-driven Tomasulo scheduler: a heap of cycle-stamped wakeups."""

    def __init__(self, model: TimingModel = DEFAULT_MODEL) -> None:
        self.model = model

    def schedule(self, ops: Sequence[DynamicOp]) -> Schedule:
        """Assign cycles to ``ops``; contended models take the arbitrated path."""
        if self.model.contended:
            return self._schedule_contended(ops)
        return self._schedule_unbounded(ops)

    def _schedule_unbounded(self, ops: Sequence[DynamicOp]) -> Schedule:
        """The original fast path: no port or CDB bookkeeping at all."""
        model = self.model
        n = len(ops)
        dispatch = [0] * n
        issue = [0] * n
        complete = [0] * n
        retire = [0] * n
        ready = [0] * n
        if n == 0:
            return Schedule(dispatch, issue, complete, retire, ready)

        rat: Dict[str, int] = {}
        last_fence: Optional[int] = None
        in_flight: Set[int] = set()  # dispatched, not yet completed
        pending: Dict[int, int] = {}  # seq -> outstanding producer count
        ready_floor: Dict[int, int] = {}  # seq -> earliest issue cycle so far
        waiters: Dict[int, List[int]] = {}  # producer seq -> dependent seqs
        done: Set[int] = set()

        next_dispatch = 0  # next op to dispatch (program order)
        head = 0  # next op to retire (program order)
        rob_used = 0
        rs_used = 0

        heap: List[Tuple[int, int, int]] = [(0, _DISPATCH, 0)]
        scheduled_tries: Set[Tuple[int, int]] = {(0, _DISPATCH)}

        def try_later(cycle: int, phase: int) -> None:
            if (cycle, phase) not in scheduled_tries:
                scheduled_tries.add((cycle, phase))
                heapq.heappush(heap, (cycle, phase, 0))

        while heap:
            cycle, phase, seq = heapq.heappop(heap)

            if phase == _COMPLETE:
                done.add(seq)
                in_flight.discard(seq)
                rs_used -= 1
                for dependent in waiters.pop(seq, ()):
                    pending[dependent] -= 1
                    floor = max(ready_floor[dependent], cycle + 1)
                    ready_floor[dependent] = floor
                    if pending[dependent] == 0:
                        ready[dependent] = floor
                        heapq.heappush(heap, (floor, _ISSUE, dependent))
                try_later(cycle, _RETIRE)
                try_later(cycle, _DISPATCH)

            elif phase == _RETIRE:
                retired = 0
                while (
                    head < n
                    and head in done
                    and complete[head] <= cycle - 1
                    and retired < model.commit_width
                ):
                    retire[head] = cycle
                    rob_used -= 1
                    head += 1
                    retired += 1
                if retired:
                    try_later(cycle, _DISPATCH)
                if head < n:
                    if head in done and complete[head] <= cycle - 1:
                        try_later(cycle + 1, _RETIRE)  # commit-width limited
                    elif head in done:
                        try_later(complete[head] + 1, _RETIRE)
                    # Otherwise the head's completion event reschedules us.

            elif phase == _DISPATCH:
                dispatched = 0
                while (
                    next_dispatch < n
                    and dispatched < model.dispatch_width
                    and rob_used < model.rob_size
                    and rs_used < model.rs_entries
                ):
                    op = ops[next_dispatch]
                    seq = next_dispatch
                    dispatch[seq] = cycle
                    rob_used += 1
                    rs_used += 1
                    in_flight.add(seq)
                    deps = _dependencies(op, rat, last_fence)
                    if op.kind == "fence":
                        deps |= in_flight - done - {seq}
                        last_fence = seq
                    floor = cycle + 1
                    outstanding = 0
                    for producer in deps:
                        if producer in done:
                            floor = max(floor, complete[producer] + 1)
                        else:
                            outstanding += 1
                            waiters.setdefault(producer, []).append(seq)
                    pending[seq] = outstanding
                    ready_floor[seq] = floor
                    for name in op.writes:
                        rat[name] = seq
                    if outstanding == 0:
                        ready[seq] = floor
                        heapq.heappush(heap, (floor, _ISSUE, seq))
                    next_dispatch += 1
                    dispatched += 1
                if next_dispatch < n and dispatched == model.dispatch_width:
                    try_later(cycle + 1, _DISPATCH)
                # A structural stall resumes on the freeing complete/retire.

            else:  # _ISSUE
                issue[seq] = cycle
                finish = cycle + max(1, ops[seq].latency)
                complete[seq] = finish
                heapq.heappush(heap, (finish, _COMPLETE, seq))

        if head < n:  # pragma: no cover - scheduler invariant
            raise RuntimeError(f"deadlock: {n - head} ops never retired")
        return Schedule(dispatch, issue, complete, retire, ready)

    def _schedule_contended(self, ops: Sequence[DynamicOp]) -> Schedule:
        """The arbitrated path: port occupancy counters + per-cycle CDB budget.

        Arbitration is a single mask pass per cycle over integer bitmasks:
        finished ops accumulate in a per-cycle ``finishers`` bitmask and the
        ``cdb_width`` lowest set bits (the oldest seqs -- exactly the order
        the per-event heap pops used to grant) win broadcast slots, the
        remainder carrying to the next cycle's mask.  Port-stalled ops sit in
        a per-pool wait bitmask whose lowest set bit is the oldest waiter, so
        ``mask & -mask`` hands a freed port to the same op the old per-pool
        heap would have popped.  ``tests/test_batch_plane.py`` keeps a
        verbatim pre-mask copy of the rescan walk and cross-checks both.

        Handles ``None`` limits too (they simply never bind), which is what
        the no-regression property test exercises: with every limit unbounded
        this path must produce byte-identical schedules to
        :meth:`_schedule_unbounded`.
        """
        model = self.model
        n = len(ops)
        dispatch = [0] * n
        issue = [0] * n
        complete = [0] * n
        retire = [0] * n
        ready = [0] * n
        if n == 0:
            return Schedule(dispatch, issue, complete, retire, ready)

        rat: Dict[str, int] = {}
        last_fence: Optional[int] = None
        in_flight: Set[int] = set()
        pending: Dict[int, int] = {}
        ready_floor: Dict[int, int] = {}
        waiters: Dict[int, List[int]] = {}
        done: Set[int] = set()

        next_dispatch = 0
        head = 0
        rob_used = 0
        rs_used = 0

        #: Functional-unit pool of every op; None for fences / nops.
        pools = [port_kind(op.kind) for op in ops]
        limits = {pool: model.port_limit(pool) for pool in PORT_POOLS}
        port_used = {pool: 0 for pool in PORT_POOLS}
        #: Data-ready ops stalled on a full pool, as a bitmask over seqs --
        #: the lowest set bit is the oldest waiter (heap-pop order).
        port_wait = {pool: 0 for pool in PORT_POOLS}
        cdb_width = model.cdb_width
        #: Cycle -> bitmask of ops whose execution finishes that cycle (CDB
        #: losers are merged into the next cycle's mask).
        finishers: Dict[int, int] = {}

        heap: List[Tuple[int, int, int]] = [(0, _DISPATCH, 0)]
        scheduled_tries: Set[Tuple[int, int]] = {(0, _DISPATCH)}

        def try_later(cycle: int, phase: int) -> None:
            if (cycle, phase) not in scheduled_tries:
                scheduled_tries.add((cycle, phase))
                heapq.heappush(heap, (cycle, phase, 0))

        while heap:
            cycle, phase, seq = heapq.heappop(heap)

            if phase == _COMPLETE:
                # CDB arbitration, one mask pass: every op finishing this
                # cycle (plus losers carried from earlier cycles) arbitrates
                # in the same bitmask; the ``cdb_width`` lowest set bits --
                # the oldest seqs -- win broadcast slots, the rest carry to
                # next cycle's mask, still holding their reservation station
                # and port.
                granted = finishers.pop(cycle, 0)
                if cdb_width is not None:
                    mask, granted = granted, 0
                    for _ in range(cdb_width):
                        if not mask:
                            break
                        low = mask & -mask
                        granted |= low
                        mask ^= low
                    if mask:
                        finishers[cycle + 1] = finishers.get(cycle + 1, 0) | mask
                        try_later(cycle + 1, _COMPLETE)
                grants = granted
                while grants:
                    low = grants & -grants
                    grants ^= low
                    seq = low.bit_length() - 1
                    complete[seq] = cycle
                    done.add(seq)
                    in_flight.discard(seq)
                    rs_used -= 1
                    pool = pools[seq]
                    if pool is not None and limits[pool] is not None:
                        port_used[pool] -= 1
                        wait_mask = port_wait[pool]
                        if wait_mask:
                            # Hand the freed port to the oldest waiter (the
                            # lowest set bit); it re-checks availability at
                            # issue time (a still-older op waking this same
                            # cycle may take the port first).
                            waiter_bit = wait_mask & -wait_mask
                            port_wait[pool] = wait_mask ^ waiter_bit
                            heapq.heappush(
                                heap, (cycle, _ISSUE, waiter_bit.bit_length() - 1)
                            )
                    for dependent in waiters.pop(seq, ()):
                        pending[dependent] -= 1
                        floor = max(ready_floor[dependent], cycle + 1)
                        ready_floor[dependent] = floor
                        if pending[dependent] == 0:
                            ready[dependent] = floor
                            heapq.heappush(heap, (floor, _ISSUE, dependent))
                if granted:
                    try_later(cycle, _RETIRE)
                    try_later(cycle, _DISPATCH)

            elif phase == _RETIRE:
                retired = 0
                while (
                    head < n
                    and head in done
                    and complete[head] <= cycle - 1
                    and retired < model.commit_width
                ):
                    retire[head] = cycle
                    rob_used -= 1
                    head += 1
                    retired += 1
                if retired:
                    try_later(cycle, _DISPATCH)
                if head < n:
                    if head in done and complete[head] <= cycle - 1:
                        try_later(cycle + 1, _RETIRE)
                    elif head in done:
                        try_later(complete[head] + 1, _RETIRE)

            elif phase == _DISPATCH:
                dispatched = 0
                while (
                    next_dispatch < n
                    and dispatched < model.dispatch_width
                    and rob_used < model.rob_size
                    and rs_used < model.rs_entries
                ):
                    op = ops[next_dispatch]
                    seq = next_dispatch
                    dispatch[seq] = cycle
                    rob_used += 1
                    rs_used += 1
                    in_flight.add(seq)
                    deps = _dependencies(op, rat, last_fence)
                    if op.kind == "fence":
                        deps |= in_flight - done - {seq}
                        last_fence = seq
                    floor = cycle + 1
                    outstanding = 0
                    for producer in deps:
                        if producer in done:
                            floor = max(floor, complete[producer] + 1)
                        else:
                            outstanding += 1
                            waiters.setdefault(producer, []).append(seq)
                    pending[seq] = outstanding
                    ready_floor[seq] = floor
                    for name in op.writes:
                        rat[name] = seq
                    if outstanding == 0:
                        ready[seq] = floor
                        heapq.heappush(heap, (floor, _ISSUE, seq))
                    next_dispatch += 1
                    dispatched += 1
                if next_dispatch < n and dispatched == model.dispatch_width:
                    try_later(cycle + 1, _DISPATCH)

            else:  # _ISSUE
                pool = pools[seq]
                limit = limits[pool] if pool is not None else None
                if limit is not None and port_used[pool] >= limit:
                    port_wait[pool] |= 1 << seq
                    continue
                if limit is not None:
                    port_used[pool] += 1
                issue[seq] = cycle
                finish = cycle + max(1, ops[seq].latency)
                finishers[finish] = finishers.get(finish, 0) | (1 << seq)
                try_later(finish, _COMPLETE)

        if head < n:  # pragma: no cover - scheduler invariant
            raise RuntimeError(f"deadlock: {n - head} ops never retired")
        return Schedule(dispatch, issue, complete, retire, ready)


class RescanScheduler:
    """The naive baseline: advance one cycle at a time, re-scan everything.

    Implements the identical timing specification by brute force -- each
    cycle re-arbitrates every in-flight instruction, the way the
    interpreter's per-cycle loop re-scans its window.  The per-cycle state
    lives in integer bitmasks over the dynamic seq space: ``waiting`` holds
    the dispatched-not-yet-issued ops, each op carries a ``dep_mask`` of its
    producer seqs, and ``visible`` snapshots the ops whose broadcast has
    landed (completed on an earlier cycle).  Wakeup is then one bit test per
    waiting op -- ``dep_mask & ~visible == 0`` -- instead of the old walk
    over its producer set, finished ops bucket into a per-cycle
    ``finishers`` mask whose ``cdb_width`` lowest bits (oldest seqs) win
    broadcast, and the waiting mask is drained lowest-bit-first so scarce
    ports still go to the oldest data-ready contenders.  The pre-mask walk
    survives verbatim as ``ReferenceRescanScheduler`` in
    ``tests/test_batch_plane.py``, differentially tested equal, and this
    scheduler stays the event engine's per-cycle oracle.
    """

    def __init__(self, model: TimingModel = DEFAULT_MODEL) -> None:
        self.model = model

    def schedule(self, ops: Sequence[DynamicOp]) -> Schedule:
        model = self.model
        n = len(ops)
        dispatch = [0] * n
        issue = [0] * n
        complete = [0] * n
        retire = [0] * n
        ready = [0] * n
        if n == 0:
            return Schedule(dispatch, issue, complete, retire, ready)

        rat: Dict[str, int] = {}
        last_fence: Optional[int] = None
        dep_mask: Dict[int, int] = {}  # seq -> bitmask of its producer seqs
        waiting = 0  # bitmask: dispatched, not yet issued
        finishers: Dict[int, int] = {}  # cycle -> bitmask finishing execution
        carry = 0  # bitmask: finished ops that lost CDB arbitration
        broadcast = 0  # bitmask: ops whose completion has been granted
        visible = 0  # ``broadcast`` as of the end of the previous cycle
        in_flight = 0  # bitmask: dispatched, not yet completed
        ready_seen = 0  # bitmask: ops whose ready cycle is stamped

        pools = [port_kind(op.kind) for op in ops]
        limits = {pool: model.port_limit(pool) for pool in PORT_POOLS}
        port_used = {pool: 0 for pool in PORT_POOLS}
        cdb_width = model.cdb_width

        next_dispatch = 0
        head = 0
        rob_used = 0
        rs_used = 0
        cycle = 0

        while head < n:
            # Phase 1: broadcasts.  Every op whose execution has finished --
            # this cycle's bucket plus the carried losers -- wants a CDB
            # slot; the ``cdb_width`` lowest set bits (oldest seqs) win.
            # Completion frees the reservation station and the port.
            granted = carry | finishers.pop(cycle, 0)
            carry = 0
            if cdb_width is not None:
                mask, granted = granted, 0
                for _ in range(cdb_width):
                    if not mask:
                        break
                    low = mask & -mask
                    granted |= low
                    mask ^= low
                carry = mask
            grants = granted
            while grants:
                low = grants & -grants
                grants ^= low
                seq = low.bit_length() - 1
                complete[seq] = cycle
                rs_used -= 1
                pool = pools[seq]
                if pool is not None and limits[pool] is not None:
                    port_used[pool] -= 1
            broadcast |= granted
            in_flight &= ~granted

            # Phase 2: in-order retirement from the ROB head.  A head op is
            # retirable once its broadcast is *visible* (completed on an
            # earlier cycle) -- exactly the ``visible`` snapshot bit.
            retired = 0
            while (
                head < n
                and (visible >> head) & 1
                and retired < model.commit_width
            ):
                retire[head] = cycle
                rob_used -= 1
                head += 1
                retired += 1

            # Phase 3: in-order dispatch into freed entries.
            dispatched = 0
            while (
                next_dispatch < n
                and dispatched < model.dispatch_width
                and rob_used < model.rob_size
                and rs_used < model.rs_entries
            ):
                op = ops[next_dispatch]
                seq = next_dispatch
                bit = 1 << seq
                dispatch[seq] = cycle
                rob_used += 1
                rs_used += 1
                in_flight |= bit
                producers = 0
                for producer in _dependencies(op, rat, last_fence):
                    producers |= 1 << producer
                if op.kind == "fence":
                    producers |= in_flight & ~bit  # every older in-flight op
                    last_fence = seq
                dep_mask[seq] = producers
                for name in op.writes:
                    rat[name] = seq
                waiting |= bit
                next_dispatch += 1
                dispatched += 1

            # Phase 4: wake and arbitrate the waiting set in one mask pass
            # (the O(in-flight) work per cycle the event queue exists to
            # avoid, now one producer-mask test per op instead of a walk
            # over its producer set).  Bits drain lowest first, so scarce
            # ports go to the oldest data-ready contenders.
            scan = waiting
            while scan:
                low = scan & -scan
                scan ^= low
                seq = low.bit_length() - 1
                if dispatch[seq] >= cycle or dep_mask[seq] & ~visible:
                    continue  # not data-ready; stays waiting
                if not (ready_seen >> seq) & 1:
                    ready_seen |= low
                    ready[seq] = cycle
                pool = pools[seq]
                limit = limits[pool] if pool is not None else None
                if limit is not None and port_used[pool] >= limit:
                    continue  # port-stalled; retries next cycle
                if limit is not None:
                    port_used[pool] += 1
                waiting ^= low
                issue[seq] = cycle
                finish = cycle + max(1, ops[seq].latency)
                finishers[finish] = finishers.get(finish, 0) | low

            visible = broadcast
            cycle += 1

        return Schedule(dispatch, issue, complete, retire, ready)
