"""Cycle-accurate schedulers for the out-of-order timing plane.

Two interchangeable implementations of the same Tomasulo-style timing
semantics, sharing one deterministic specification:

* **dispatch** -- in program (dynamic) order, at most ``dispatch_width`` ops
  per cycle, stalling while the reorder buffer or the reservation-station
  pool is full.  Dispatch renames sources through the register alias table
  (RAT): each read maps to the youngest older op writing that register.
* **issue** -- an op issues the cycle after its dispatch *and* the cycle
  after its last producer completes (the common-data-bus broadcast takes one
  cycle).  Functional units are not a contended resource in this model.
* **complete** -- ``issue + latency`` cycles; memory ops carry the cache
  latency (hit or miss) measured by the functional front-end.  Completion
  frees the reservation station and wakes dependents.
* **retire** -- in order from the ROB head, at most ``commit_width`` per
  cycle, the cycle after completion at the earliest.  Retirement frees the
  ROB entry.  Transient (speculation-window) ops flow through the same drain
  -- their "retirement" models the flush slot they occupy during recovery.
* **fences** serialize: a fence waits for every older in-flight op, and every
  younger op additionally waits for the fence.

:class:`EventScheduler` is the production engine: a single heap of
cycle-stamped events (complete / retire-try / dispatch-try / issue) so each
simulated cycle only touches ops that actually wake up -- idle stretches of a
200-cycle cache miss cost nothing.  :class:`RescanScheduler` is the
deliberately naive baseline the ROADMAP told us to retire: it advances one
cycle at a time and re-scans every in-flight instruction for readiness,
exactly like the interpreter's per-cycle loop.  Both produce identical
:class:`Schedule` objects (property-tested), so the event engine's speedup is
measured against a semantically equal baseline.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .ops import DynamicOp

#: Intra-cycle phase order shared by both schedulers: completions free
#: reservation stations, then the ROB head retires, then stalled dispatch
#: resumes (same-cycle reuse of freed entries), then woken ops issue.
_COMPLETE, _RETIRE, _DISPATCH, _ISSUE = 0, 1, 2, 3


@dataclass(frozen=True)
class TimingModel:
    """Microarchitectural parameters of the timing plane.

    ``fault_resolution_delay`` and ``return_resolution_delay`` default to the
    uarch config's cache miss latency when ``None``: a delayed permission /
    ownership check (or the architectural return-address read the attacker
    flushed) resolves on the timescale of a memory round-trip, which is what
    makes the paper's race winnable in the first place.
    """

    dispatch_width: int = 4
    commit_width: int = 4
    rob_size: int = 192
    rs_entries: int = 64
    #: Cycles between the authorization resolving and the recovery (flush +
    #: refetch) completing; covert sends issued before recovery completes
    #: still perturb the cache -- in-flight memory requests are not recalled.
    squash_penalty: int = 16
    fault_resolution_delay: Optional[int] = None
    return_resolution_delay: Optional[int] = None

    def resolution_delay(self, window_kind: str, miss_latency: int) -> int:
        """Extra cycles between trigger completion and authorization resolution."""
        if window_kind in ("branch", "indirect"):
            return 0  # carried by the trigger's own slow data dependency
        if window_kind == "return":
            delay = self.return_resolution_delay
        else:
            delay = self.fault_resolution_delay
        return miss_latency if delay is None else delay


DEFAULT_MODEL = TimingModel()


@dataclass
class Schedule:
    """Per-op cycle assignments produced by a scheduler."""

    dispatch: List[int]
    issue: List[int]
    complete: List[int]
    retire: List[int]

    @property
    def cycles(self) -> int:
        """Total cycles simulated (last retirement)."""
        return max(self.retire) + 1 if self.retire else 0


def _dependencies(
    op: DynamicOp, rat: Dict[str, int], last_fence: Optional[int]
) -> Set[int]:
    """Producer seqs of ``op`` at dispatch time (register renaming + fences)."""
    deps = {rat[name] for name in op.reads if name in rat}
    if last_fence is not None:
        deps.add(last_fence)
    return deps


class EventScheduler:
    """Event-driven Tomasulo scheduler: a heap of cycle-stamped wakeups."""

    def __init__(self, model: TimingModel = DEFAULT_MODEL) -> None:
        self.model = model

    def schedule(self, ops: Sequence[DynamicOp]) -> Schedule:
        model = self.model
        n = len(ops)
        dispatch = [0] * n
        issue = [0] * n
        complete = [0] * n
        retire = [0] * n
        if n == 0:
            return Schedule(dispatch, issue, complete, retire)

        rat: Dict[str, int] = {}
        last_fence: Optional[int] = None
        in_flight: Set[int] = set()  # dispatched, not yet completed
        pending: Dict[int, int] = {}  # seq -> outstanding producer count
        ready_floor: Dict[int, int] = {}  # seq -> earliest issue cycle so far
        waiters: Dict[int, List[int]] = {}  # producer seq -> dependent seqs
        done: Set[int] = set()

        next_dispatch = 0  # next op to dispatch (program order)
        head = 0  # next op to retire (program order)
        rob_used = 0
        rs_used = 0

        heap: List[Tuple[int, int, int]] = [(0, _DISPATCH, 0)]
        scheduled_tries: Set[Tuple[int, int]] = {(0, _DISPATCH)}

        def try_later(cycle: int, phase: int) -> None:
            if (cycle, phase) not in scheduled_tries:
                scheduled_tries.add((cycle, phase))
                heapq.heappush(heap, (cycle, phase, 0))

        while heap:
            cycle, phase, seq = heapq.heappop(heap)

            if phase == _COMPLETE:
                done.add(seq)
                in_flight.discard(seq)
                rs_used -= 1
                for dependent in waiters.pop(seq, ()):
                    pending[dependent] -= 1
                    floor = max(ready_floor[dependent], cycle + 1)
                    ready_floor[dependent] = floor
                    if pending[dependent] == 0:
                        heapq.heappush(heap, (floor, _ISSUE, dependent))
                try_later(cycle, _RETIRE)
                try_later(cycle, _DISPATCH)

            elif phase == _RETIRE:
                retired = 0
                while (
                    head < n
                    and head in done
                    and complete[head] <= cycle - 1
                    and retired < model.commit_width
                ):
                    retire[head] = cycle
                    rob_used -= 1
                    head += 1
                    retired += 1
                if retired:
                    try_later(cycle, _DISPATCH)
                if head < n:
                    if head in done and complete[head] <= cycle - 1:
                        try_later(cycle + 1, _RETIRE)  # commit-width limited
                    elif head in done:
                        try_later(complete[head] + 1, _RETIRE)
                    # Otherwise the head's completion event reschedules us.

            elif phase == _DISPATCH:
                dispatched = 0
                while (
                    next_dispatch < n
                    and dispatched < model.dispatch_width
                    and rob_used < model.rob_size
                    and rs_used < model.rs_entries
                ):
                    op = ops[next_dispatch]
                    seq = next_dispatch
                    dispatch[seq] = cycle
                    rob_used += 1
                    rs_used += 1
                    in_flight.add(seq)
                    deps = _dependencies(op, rat, last_fence)
                    if op.kind == "fence":
                        deps |= in_flight - done - {seq}
                        last_fence = seq
                    floor = cycle + 1
                    outstanding = 0
                    for producer in deps:
                        if producer in done:
                            floor = max(floor, complete[producer] + 1)
                        else:
                            outstanding += 1
                            waiters.setdefault(producer, []).append(seq)
                    pending[seq] = outstanding
                    ready_floor[seq] = floor
                    for name in op.writes:
                        rat[name] = seq
                    if outstanding == 0:
                        heapq.heappush(heap, (floor, _ISSUE, seq))
                    next_dispatch += 1
                    dispatched += 1
                if next_dispatch < n and dispatched == model.dispatch_width:
                    try_later(cycle + 1, _DISPATCH)
                # A structural stall resumes on the freeing complete/retire.

            else:  # _ISSUE
                issue[seq] = cycle
                finish = cycle + max(1, ops[seq].latency)
                complete[seq] = finish
                heapq.heappush(heap, (finish, _COMPLETE, seq))

        if head < n:  # pragma: no cover - scheduler invariant
            raise RuntimeError(f"deadlock: {n - head} ops never retired")
        return Schedule(dispatch, issue, complete, retire)


class RescanScheduler:
    """The naive baseline: advance one cycle at a time, re-scan everything.

    Implements the identical timing specification by brute force -- each
    cycle walks the full waiting set to find woken ops, the completion set to
    find finished ops, and the ROB head to retire, the way the interpreter's
    per-cycle loop re-scans every in-flight instruction.  Exists only as the
    measured baseline for the event engine (and as its differential oracle).
    """

    def __init__(self, model: TimingModel = DEFAULT_MODEL) -> None:
        self.model = model

    def schedule(self, ops: Sequence[DynamicOp]) -> Schedule:
        model = self.model
        n = len(ops)
        dispatch = [0] * n
        issue = [0] * n
        complete = [0] * n
        retire = [0] * n
        if n == 0:
            return Schedule(dispatch, issue, complete, retire)

        rat: Dict[str, int] = {}
        last_fence: Optional[int] = None
        deps: Dict[int, Set[int]] = {}
        waiting: List[int] = []  # dispatched, not yet issued
        executing: List[int] = []  # issued, not yet completed
        done: Set[int] = set()
        in_flight: Set[int] = set()

        next_dispatch = 0
        head = 0
        rob_used = 0
        rs_used = 0
        cycle = 0

        while head < n:
            # Phase 1: completions (frees reservation stations).
            still_executing = []
            for seq in executing:
                if complete[seq] == cycle:
                    done.add(seq)
                    in_flight.discard(seq)
                    rs_used -= 1
                else:
                    still_executing.append(seq)
            executing = still_executing

            # Phase 2: in-order retirement from the ROB head.
            retired = 0
            while (
                head < n
                and head in done
                and complete[head] <= cycle - 1
                and retired < model.commit_width
            ):
                retire[head] = cycle
                rob_used -= 1
                head += 1
                retired += 1

            # Phase 3: in-order dispatch into freed entries.
            dispatched = 0
            while (
                next_dispatch < n
                and dispatched < model.dispatch_width
                and rob_used < model.rob_size
                and rs_used < model.rs_entries
            ):
                op = ops[next_dispatch]
                seq = next_dispatch
                dispatch[seq] = cycle
                rob_used += 1
                rs_used += 1
                in_flight.add(seq)
                op_deps = _dependencies(op, rat, last_fence)
                if op.kind == "fence":
                    op_deps |= in_flight - done - {seq}
                    last_fence = seq
                deps[seq] = op_deps
                for name in op.writes:
                    rat[name] = seq
                waiting.append(seq)
                next_dispatch += 1
                dispatched += 1

            # Phase 4: re-scan every waiting op for wakeup (the O(in-flight)
            # work per cycle the event queue exists to avoid).
            still_waiting = []
            for seq in waiting:
                producers = deps[seq]
                if dispatch[seq] <= cycle - 1 and all(
                    producer in done and complete[producer] <= cycle - 1
                    for producer in producers
                ):
                    issue[seq] = cycle
                    complete[seq] = cycle + max(1, ops[seq].latency)
                    executing.append(seq)
                else:
                    still_waiting.append(seq)
            waiting = still_waiting

            cycle += 1

        return Schedule(dispatch, issue, complete, retire)
