"""Cross-validating Theorem 1: measured cycle races vs TSG race verdicts.

The paper's Theorem 1 reduces "can the attack leak?" to a reachability
question on the attack's TSG: the covert *send* races with the
authorization's *resolution* exactly when no path orders them.  The timing
core measures the same race in cycles: the send either issues before the
squash lands, or it does not.

:func:`cross_validate` runs both sides for every attack in the registry:

* the **TSG verdict** -- :func:`repro.defenses.evaluation.attack_succeeds`
  on the variant's (undefended) attack graph, and
* the **measured verdict** -- the end-to-end exploit replayed on
  :class:`~repro.uarch.timing.core.TimingCPU`, reporting whether the
  covert transmit issued at or before the squash cycle.

Variants without a bespoke simulator program (the OS/VMM Foreshadow
deployments, the MDS siblings, LVI, TAA, CacheOut, Spoiler) are measured
through the registry-mapped representative exploit that shares their delay
mechanism -- the timing race is a property of the delayed authorization and
the covert channel, both of which the representative reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..config import DEFAULT_CONFIG, UarchConfig
from .core import TimingCPU
from .trace import TimingTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...engine import Engine
    from .scheduler import TimingModel

#: Registry key -> end-to-end exploit that reproduces its timing race.
SCENARIOS: Dict[str, str] = {
    "spectre_v1": "spectre_v1",
    "spectre_v1_1": "spectre_v1",  # same bounds-check authorization delay
    "spectre_v1_2": "spectre_v1",
    "spectre_v2": "spectre_v2",
    "meltdown": "meltdown",
    "spectre_v3a": "spectre_v3a",
    "spectre_v4": "spectre_v4",
    "spectre_rsb": "spectre_rsb",
    "foreshadow": "foreshadow",
    "foreshadow_os": "foreshadow",  # same L1TF fault, different deployment
    "foreshadow_vmm": "foreshadow",
    "lazy_fp": "lazy_fp",
    "ridl": "mds",  # load-port / fill-buffer sampling
    "zombieload": "mds",
    "fallout": "mds",  # store-buffer sampling
    "lvi": "mds",  # same delayed fault check, inverted data flow
    "taa": "mds",  # TSX abort completes like a suppressed fault
    "cacheout": "mds",
    "spoiler": "spectre_v4",  # store-address disambiguation delay
}


@dataclass(frozen=True)
class RaceCheck:
    """Theorem-1 agreement between the TSG and the measured timing for one attack."""

    attack: str
    scenario: str
    tsg_leaks: bool
    transmit_beats_squash: bool
    transmit_cycle: Optional[int]
    squash_cycle: Optional[int]
    window_cycles: Optional[int]
    functional_leak: bool

    @property
    def agrees(self) -> bool:
        """The TSG race verdict matches the measured cycle race."""
        return self.tsg_leaks == self.transmit_beats_squash

    def to_dict(self) -> Dict[str, object]:
        return {
            "attack": self.attack,
            "scenario": self.scenario,
            "tsg_leaks": self.tsg_leaks,
            "transmit_beats_squash": self.transmit_beats_squash,
            "transmit_cycle": self.transmit_cycle,
            "squash_cycle": self.squash_cycle,
            "window_cycles": self.window_cycles,
            "functional_leak": self.functional_leak,
            "agrees": self.agrees,
        }


def timed_exploit(
    scenario: str,
    config: UarchConfig = DEFAULT_CONFIG,
    secret: Optional[int] = None,
    model: Optional["TimingModel"] = None,
):
    """Run one end-to-end exploit on the timing core; returns its ExploitResult.

    The result's ``timing`` attribute holds the :class:`TimingTrace` of the
    victim run (the last :meth:`TimingCPU.run` call the harness made).
    ``model`` overrides the timing plane's microarchitectural parameters.
    """
    from functools import partial

    from ...exploits.harness import DEFAULT_SECRET, EXPLOITS

    if scenario not in EXPLOITS:
        raise KeyError(
            f"unknown exploit scenario {scenario!r}; known: {', '.join(sorted(EXPLOITS))}"
        )
    planted = DEFAULT_SECRET if secret is None else secret
    cpu_cls = TimingCPU if model is None else partial(TimingCPU, model=model)
    return EXPLOITS[scenario](config, planted, cpu_cls=cpu_cls)


def check_attack(
    key: str,
    config: UarchConfig = DEFAULT_CONFIG,
    model: Optional["TimingModel"] = None,
) -> RaceCheck:
    """Measure one registry attack's race and compare it with its TSG verdict.

    ``model`` overrides the timing plane's microarchitectural parameters --
    pass a contended model (bounded FU ports / CDB) to check that Theorem 1
    still holds when the transmit has to fight for issue slots.
    """
    from ...attacks.registry import get
    from ...defenses.evaluation import attack_succeeds

    variant = get(key)
    scenario = SCENARIOS.get(key)
    if scenario is None:
        raise KeyError(f"no timing scenario registered for attack {key!r}")
    tsg_leaks = attack_succeeds(variant.build_graph())
    result = timed_exploit(scenario, config, model=model)
    trace: Optional[TimingTrace] = result.timing
    if trace is None:  # pragma: no cover - harness always attaches the trace
        raise RuntimeError(f"timing harness returned no trace for {scenario!r}")
    return RaceCheck(
        attack=key,
        scenario=scenario,
        tsg_leaks=tsg_leaks,
        transmit_beats_squash=trace.transmit_beats_squash,
        transmit_cycle=trace.transmit_cycle,
        squash_cycle=trace.squash_cycle,
        window_cycles=trace.window_cycles,
        functional_leak=result.success,
    )


def cross_validate(
    attacks: Optional[Sequence[str]] = None,
    *,
    engine: Optional["Engine"] = None,
    parallel: Optional[int] = None,
    model: Optional["TimingModel"] = None,
) -> List[RaceCheck]:
    """Theorem-1 cross-check for every attack in the registry (or a subset).

    With an engine session the per-attack checks are sharded over
    :meth:`Engine.map`; rows come back in registry order either way.
    ``model`` selects the timing-plane configuration (e.g.
    :data:`~repro.uarch.timing.scheduler.CONTENDED_MODEL` to validate the
    race under port/CDB contention).
    """
    from functools import partial

    from ...attacks.registry import keys

    chosen = list(attacks) if attacks is not None else keys()
    unknown = [key for key in chosen if key not in SCENARIOS]
    if unknown:
        raise KeyError(f"no timing scenario for attacks: {', '.join(sorted(unknown))}")
    checker = check_attack if model is None else partial(check_attack, model=model)
    if engine is not None:
        return engine.map(checker, chosen, parallel=parallel)
    return [checker(key) for key in chosen]


def validation_report(checks: Sequence[RaceCheck]) -> str:
    """A compact text table of the cross-validation outcome."""
    lines = [
        f"{'attack':<16} {'scenario':<12} {'TSG':<6} {'timing':<7} "
        f"{'transmit':>8} {'squash':>7} agrees"
    ]
    for check in checks:
        lines.append(
            f"{check.attack:<16} {check.scenario:<12} "
            f"{'leaks' if check.tsg_leaks else 'safe':<6} "
            f"{'leaks' if check.transmit_beats_squash else 'safe':<7} "
            f"{check.transmit_cycle if check.transmit_cycle is not None else '-':>8} "
            f"{check.squash_cycle if check.squash_cycle is not None else '-':>7} "
            f"{'yes' if check.agrees else 'NO'}"
        )
    agreeing = sum(1 for check in checks if check.agrees)
    lines.append(f"{agreeing}/{len(checks)} attacks agree with Theorem 1")
    return "\n".join(lines)
