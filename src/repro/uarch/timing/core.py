"""The cycle-accurate timing CPU: functional front-end + OoO timing plane.

:class:`TimingCPU` extends :class:`~repro.uarch.pipeline.SpeculativeCPU` with
a second, cycle-accurate plane.  The two planes split the work the way
timing-directed simulators do:

* the **functional plane** (inherited, unchanged) executes the program with
  the paper's exact speculation semantics -- delayed authorizations open
  transient windows, scratch state is rolled back, micro-architectural state
  persists, defenses gate forwarding.  Architectural results, cache/buffer
  state and :class:`~repro.uarch.stats.SimStats` are therefore *identical* to
  a plain ``SpeculativeCPU`` run (property-tested in
  ``tests/test_timing_equivalence.py``).
* the **timing plane** records every executed instruction as a
  :class:`~repro.uarch.timing.ops.DynamicOp` -- its register reads/writes,
  its measured cache latency, the speculation window it ran in, whether it
  was a covert send -- and schedules the stream through the event-driven
  Tomasulo engine (reservation stations, ROB, RAT, heap event queue) to
  produce a cycle-stamped :class:`~repro.uarch.timing.trace.TimingTrace`.

The trace answers what the instruction-budgeted interpreter cannot: *when*
the squash landed relative to the covert-channel transmit, in cycles -- the
measured side of the Theorem 1 race that
:mod:`repro.uarch.timing.validate` cross-checks against the TSG verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ...isa.instructions import Instruction
from ...isa.program import Program
from ..config import DEFAULT_CONFIG, UarchConfig
from ..pipeline import ExecutionResult, SpeculativeCPU
from .ops import DynamicOp, WindowRecord, window_kind
from .scheduler import (
    DEFAULT_MODEL,
    EventScheduler,
    RescanScheduler,
    Schedule,
    TimingModel,
)
from .trace import TimingTrace, build_trace

#: Scheduler registry keyed by the ``scheduler=`` constructor argument.
SCHEDULERS = {"event": EventScheduler, "rescan": RescanScheduler}


@dataclass
class TimingResult(ExecutionResult):
    """An :class:`ExecutionResult` plus the cycle-accurate trace of the run."""

    trace: Optional[TimingTrace] = None

    @property
    def transmit_beats_squash(self) -> bool:
        """Measured race outcome (Theorem 1): covert send issued before squash."""
        return self.trace is not None and self.trace.transmit_beats_squash


class TimingCPU(SpeculativeCPU):
    """A speculative core with a cycle-accurate, event-driven timing plane."""

    def __init__(
        self,
        program: Program,
        config: UarchConfig = DEFAULT_CONFIG,
        *,
        supervisor: bool = False,
        model: TimingModel = DEFAULT_MODEL,
        scheduler: str = "event",
    ) -> None:
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; known: {', '.join(sorted(SCHEDULERS))}"
            )
        super().__init__(program, config, supervisor=supervisor)
        self.model = model
        self.scheduler_kind = scheduler
        #: One trace per :meth:`run` call, oldest first.
        self.traces: List[TimingTrace] = []
        self.last_trace: Optional[TimingTrace] = None
        self.last_ops: List[DynamicOp] = []
        self.last_windows: List[WindowRecord] = []
        self._shared_ranges: List[Tuple[int, int]] = [
            (symbol.address, symbol.address + symbol.size)
            for symbol in program.symbols.values()
            if symbol.shared
        ]
        self._rec_ops: Optional[List[DynamicOp]] = None
        self._rec_windows: List[WindowRecord] = []
        #: (op, instruction) recording stack; transient ops nest inside the
        #: architectural trigger instruction that opened their window.
        self._op_stack: List[Tuple[DynamicOp, Instruction]] = []
        self._active_window: Optional[WindowRecord] = None

    # ==================================================================
    # Recording plumbing
    # ==================================================================
    def _begin_op(self, pc: int, instruction: Instruction, *, transient: bool) -> DynamicOp:
        assert self._rec_ops is not None
        op = DynamicOp.from_instruction(
            len(self._rec_ops),
            pc,
            instruction,
            transient=transient,
            window=self._active_window.window_id if self._active_window else None,
        )
        if op.kind == "mul":
            # The multiplier pipe is multi-cycle: the long occupancy is what
            # makes the mul port a measurable contention transmitter.
            op.latency = max(op.latency, self.config.mul_latency)
        self._rec_ops.append(op)
        self._op_stack.append((op, instruction))
        if transient and self._active_window is not None:
            self._active_window.transient_seqs.append(op.seq)
        return op

    def _end_op(self) -> None:
        self._op_stack.pop()

    def _in_shared(self, address: int) -> bool:
        return any(start <= address < end for start, end in self._shared_ranges)

    # ==================================================================
    # Functional-plane hooks (semantics unchanged; timing annotations only)
    # ==================================================================
    def _read_memory_value(
        self, address: int, size: int, *, transient: bool, speculative: bool
    ) -> Tuple[int, int]:
        value, latency = super()._read_memory_value(
            address, size, transient=transient, speculative=speculative
        )
        if self._op_stack:
            op = self._op_stack[-1][0]
            op.latency = max(op.latency, latency)
            if speculative and self._in_shared(address):
                op.is_send = True
        return value, latency

    def _run_transient_window(
        self,
        start_pc: int,
        overrides: Optional[Dict[str, Optional[int]]] = None,
    ) -> int:
        if self._rec_ops is None or not self._op_stack:
            return super()._run_transient_window(start_pc, overrides)
        trigger_op, trigger_instruction = self._op_stack[-1]
        record = WindowRecord(
            window_id=len(self._rec_windows),
            trigger_seq=trigger_op.seq,
            kind=window_kind(trigger_instruction),
        )
        self._rec_windows.append(record)
        self._active_window = record
        try:
            return super()._run_transient_window(start_pc, overrides)
        finally:
            self._active_window = None

    def _transient_step(self, pc: int, instruction: Instruction, blocked) -> int:
        if self._rec_ops is None:
            return super()._transient_step(pc, instruction, blocked)
        op = self._begin_op(pc, instruction, transient=True)
        try:
            return super()._transient_step(pc, instruction, blocked)
        finally:
            if any(name in blocked for name in op.writes):
                op.blocked = True
            self._end_op()

    def _squash(self) -> None:
        self._record_window_outcome("squash")
        super()._squash()

    def _commit_speculation(self) -> None:
        self._record_window_outcome("commit")
        super()._commit_speculation()

    def _record_window_outcome(self, outcome: str) -> None:
        for record in reversed(self._rec_windows):
            if record.outcome is None:
                record.outcome = outcome
                return

    def _raise_fault(self, pc: int, description: str, destination: Optional[str]) -> int:
        if self._op_stack:
            self._op_stack[-1][0].faulted = True
        return super()._raise_fault(pc, description, destination)

    # ==================================================================
    # Execution: the inherited architectural loop, recorded per instruction
    # ==================================================================
    def _execute_instruction(self, pc: int, instruction: Instruction) -> Optional[int]:
        if self._rec_ops is None:  # pragma: no cover - run() always records
            return super()._execute_instruction(pc, instruction)
        self._begin_op(pc, instruction, transient=False)
        try:
            return super()._execute_instruction(pc, instruction)
        finally:
            self._end_op()

    def run(
        self, start: Union[int, str] = 0, max_instructions: Optional[int] = None
    ) -> TimingResult:
        """Execute from ``start``; returns the result plus its timing trace."""
        self._rec_ops = []
        self._rec_windows = []
        self._op_stack = []
        self._active_window = None
        result = super().run(start, max_instructions)
        trace = self._schedule_recorded()
        self._rec_ops = None
        return TimingResult(
            halted=result.halted,
            instructions=result.instructions,
            stats=result.stats,
            faults=result.faults,
            trace=trace,
        )

    def _schedule_recorded(self) -> TimingTrace:
        ops = self._rec_ops or []
        windows = [w for w in self._rec_windows if w.trigger_seq >= 0]
        schedule: Schedule = SCHEDULERS[self.scheduler_kind](self.model).schedule(ops)
        trace = build_trace(
            ops,
            windows,
            schedule,
            self.model,
            self.config.cache_miss_latency,
            scheduler=self.scheduler_kind,
        )
        self.last_ops = list(ops)
        self.last_windows = list(windows)
        self.traces.append(trace)
        self.last_trace = trace
        return trace
