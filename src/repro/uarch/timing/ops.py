"""Dynamic operations: the unit of work the timing schedulers reason about.

The functional front-end (:class:`repro.uarch.timing.core.TimingCPU`) records
one :class:`DynamicOp` per executed instruction -- architectural or transient
-- annotated with everything the timing plane needs and nothing it does not:
the registers the instruction reads and writes (the ISA's own dataflow
interface, which is how a decoder fills reservation-station source fields),
the measured memory latency of its cache accesses (hit or miss, straight from
the :class:`~repro.uarch.cache.SetAssociativeCache`), whether it ran inside a
speculation window, and whether it transmitted on the covert channel (a
speculative access to a ``shared`` data symbol -- the *send* vertex of the
attack graph).

Each op kind maps onto one of four functional-unit pools (:data:`PORT_POOLS`)
via :func:`port_kind`; when the :class:`~repro.uarch.timing.scheduler.
TimingModel` bounds a pool's port count, ops of that pool contend for issue
slots -- the resource the Section II-C *functional-unit contention* covert
channels modulate.  Multiplies get their own pool (and a multi-cycle latency
from :attr:`~repro.uarch.config.UarchConfig.mul_latency`) because the shared
multiplier pipe is the classic port-contention transmitter.

The flags register is modelled as an ordinary renamable register (``FLAGS``)
produced by ``cmp`` / ALU instructions and consumed by conditional branches,
so the delayed bounds check of Listing 1 appears to the scheduler as a plain
long-latency data dependency -- exactly the delayed authorization the paper's
race is about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ...isa.instructions import (
    Alu,
    Branch,
    Call,
    Fence,
    FpLoad,
    Halt,
    IndirectJmp,
    Instruction,
    Jmp,
    Load,
    Nop,
    Ret,
    Store,
)

#: ALU mnemonics executed by the (multi-cycle, port-limited) multiplier pipe.
MUL_OPS = frozenset({"imul"})

#: The four contended functional-unit pools of the timing plane.
PORT_POOLS: Tuple[str, ...] = ("alu", "load_store", "branch", "mul")

#: DynamicOp kind -> functional-unit pool it issues to.  ``None`` means the op
#: needs no execution port (fences and nops occupy only ROB/RS entries).
_PORT_KIND = {
    "load": "load_store",
    "store": "load_store",
    "branch": "branch",
    "jump": "branch",
    "mul": "mul",
    "alu": "alu",
    "fence": None,
    "nop": None,
}


def port_kind(op_kind: str) -> Optional[str]:
    """The functional-unit pool an op kind issues to (None = portless)."""
    return _PORT_KIND.get(op_kind, "alu")


def instruction_kind(instruction: Instruction) -> str:
    """Scheduler kind of the instruction (selects latency and fence handling)."""
    if isinstance(instruction, Alu) and instruction.op in MUL_OPS:
        return "mul"
    if isinstance(instruction, (Load, FpLoad)):
        return "load"
    if isinstance(instruction, Store):
        return "store"
    if isinstance(instruction, Branch):
        return "branch"
    if isinstance(instruction, (Jmp, IndirectJmp, Call, Ret)):
        return "jump"
    if isinstance(instruction, Fence):
        return "fence"
    if isinstance(instruction, (Halt, Nop)):
        return "nop"
    return "alu"


def window_kind(instruction: Instruction) -> str:
    """Classify the speculation trigger that opened a window.

    ``branch`` / ``indirect`` windows resolve through the trigger's own data
    dependencies (the slow flags / target register); ``return`` windows wait
    on the architectural return-address read; every other trigger models a
    delayed authorization check (page permission, MSR privilege, FPU owner,
    store-address disambiguation) that completes well after the data path.
    """
    if isinstance(instruction, Branch):
        return "branch"
    if isinstance(instruction, IndirectJmp):
        return "indirect"
    if isinstance(instruction, Ret):
        return "return"
    return "fault"


@dataclass
class DynamicOp:
    """One executed instruction, annotated for the timing plane."""

    seq: int
    pc: int
    text: str
    kind: str
    reads: Tuple[str, ...]
    writes: Tuple[str, ...]
    #: Execution latency in cycles; memory ops carry the measured cache
    #: latency of their (deepest) access, everything else a fixed unit cost.
    latency: int = 1
    transient: bool = False
    window: Optional[int] = None
    #: Speculative access to a ``shared`` symbol: the covert-channel transmit.
    is_send: bool = False
    #: Transient op whose source value was withheld by a defense -- it never
    #: issued to a functional unit.
    blocked: bool = False
    faulted: bool = False

    @classmethod
    def from_instruction(
        cls,
        seq: int,
        pc: int,
        instruction: Instruction,
        *,
        transient: bool = False,
        window: Optional[int] = None,
    ) -> "DynamicOp":
        """Decode an instruction into a dynamic op (deps from the ISA layer)."""
        return cls(
            seq=seq,
            pc=pc,
            text=instruction.mnemonic,
            kind=instruction_kind(instruction),
            reads=tuple(sorted(instruction.reads_registers())),
            writes=tuple(sorted(instruction.writes_registers())),
            transient=transient,
            window=window,
        )


@dataclass
class WindowRecord:
    """One speculation window as recorded by the functional front-end."""

    window_id: int
    trigger_seq: int
    kind: str
    transient_seqs: List[int] = field(default_factory=list)
    #: ``squash`` (mis-speculation) or ``commit`` (speculation validated).
    outcome: Optional[str] = None
