"""Cycle-stamped timing traces: the measured side of the paper's race.

A :class:`TimingTrace` combines the per-op cycle assignments of a scheduler
(:class:`~repro.uarch.timing.scheduler.Schedule`) with the speculation
windows the functional front-end recorded, and answers the question Theorem 1
poses about every attack: *did the covert-channel transmit issue before the
squash landed?*

For each window the trace derives:

* ``open_cycle`` -- when the first transient op entered the machine,
* ``resolve_cycle`` -- when the delayed authorization resolved (the trigger's
  completion, plus an explicit resolution delay for authorizations that are
  not carried by a register dependency: permission checks, MSR privilege,
  FPU ownership, return-address reads),
* ``squash_cycle`` -- resolution plus the recovery penalty; transient memory
  requests issued up to this cycle still perturb the cache (in-flight fills
  are not recalled -- the paper's persistence property),
* ``transmit_cycle`` -- the earliest issue of a *send* op (a speculative
  access to a ``shared`` symbol), and
* ``leaked_in_time`` -- the measured race outcome: transmit beat squash.

``transmit_beats_squash`` over the whole trace is what the validation layer
(:mod:`repro.uarch.timing.validate`) cross-checks against the TSG verdict.

Under a contended :class:`~repro.uarch.timing.scheduler.TimingModel` the
trace additionally carries stall provenance: every row records the cycle the
op became data-ready, the functional-unit pool it issued to, the cycles it
stalled waiting for a port and the cycles its finished result waited for a
common-data-bus slot.  :meth:`TimingTrace.port_occupancy` reconstructs the
per-cycle busy-port counts -- the micro-architectural state the
functional-unit contention covert channels modulate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .ops import DynamicOp, WindowRecord, port_kind
from .scheduler import Schedule, TimingModel


@dataclass(frozen=True)
class TraceEvent:
    """One key moment of the run, cycle-stamped for reports and JSON."""

    cycle: int
    kind: str  # dispatch | issue | complete | retire | window_open | transmit | squash | resolve
    seq: int
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {"cycle": self.cycle, "kind": self.kind, "seq": self.seq, "detail": self.detail}


@dataclass
class WindowTiming:
    """Measured timing of one speculation window."""

    window_id: int
    kind: str
    outcome: str  # squash | commit
    trigger_seq: int
    open_cycle: int
    resolve_cycle: int
    squash_cycle: Optional[int]
    transient_ops: int
    #: (seq, issue cycle) of every covert send in the window.
    sends: Tuple[Tuple[int, int], ...]
    #: Transient ops that had not issued when the squash landed.
    killed_ops: int = 0

    @property
    def transmit_cycle(self) -> Optional[int]:
        issues = [cycle for _, cycle in self.sends]
        return min(issues) if issues else None

    @property
    def window_cycles(self) -> int:
        """Measured transient-window length in cycles (open to squash/resolve)."""
        end = self.squash_cycle if self.squash_cycle is not None else self.resolve_cycle
        return max(0, end - self.open_cycle)

    @property
    def leaked_in_time(self) -> bool:
        """The race outcome: a covert send issued before the squash landed."""
        transmit = self.transmit_cycle
        if transmit is None:
            return False
        return self.squash_cycle is None or transmit <= self.squash_cycle

    def to_dict(self) -> Dict[str, object]:
        return {
            "window": self.window_id,
            "kind": self.kind,
            "outcome": self.outcome,
            "trigger_seq": self.trigger_seq,
            "open_cycle": self.open_cycle,
            "resolve_cycle": self.resolve_cycle,
            "squash_cycle": self.squash_cycle,
            "transient_ops": self.transient_ops,
            "killed_ops": self.killed_ops,
            "transmit_cycle": self.transmit_cycle,
            "window_cycles": self.window_cycles,
            "leaked_in_time": self.leaked_in_time,
        }


@dataclass
class ScheduledOp:
    """One dynamic op with its assigned cycles and stall provenance (trace row)."""

    op: DynamicOp
    dispatch: int
    issue: int
    complete: int
    retire: int
    killed: bool = False
    #: Cycle the op became data-ready (dispatched, all producers broadcast).
    ready: int = 0
    #: Functional-unit pool the op issued to (None: fences / nops are portless).
    port: Optional[str] = None
    #: Cycles spent data-ready but waiting for a free port (issue - ready).
    port_stall: int = 0
    #: Cycles the finished result waited for a common-data-bus slot.
    cdb_stall: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "seq": self.op.seq,
            "pc": self.op.pc,
            "text": self.op.text,
            "kind": self.op.kind,
            "transient": self.op.transient,
            "window": self.op.window,
            "is_send": self.op.is_send,
            "blocked": self.op.blocked,
            "latency": self.op.latency,
            "dispatch": self.dispatch,
            "ready": self.ready,
            "issue": self.issue,
            "complete": self.complete,
            "retire": self.retire,
            "killed": self.killed,
            "port": self.port,
            "port_stall": self.port_stall,
            "cdb_stall": self.cdb_stall,
        }


@dataclass
class TimingTrace:
    """The cycle-accurate record of one :meth:`TimingCPU.run` call."""

    ops: List[ScheduledOp]
    windows: List[WindowTiming]
    cycles: int
    scheduler: str = "event"

    # ------------------------------------------------------------------
    # Race verdicts
    # ------------------------------------------------------------------
    @property
    def transmit_beats_squash(self) -> bool:
        """Measured Theorem-1 race outcome over the whole run."""
        return any(window.leaked_in_time for window in self.windows)

    @property
    def transmit_cycle(self) -> Optional[int]:
        cycles = [w.transmit_cycle for w in self.windows if w.transmit_cycle is not None]
        return min(cycles) if cycles else None

    @property
    def squash_cycle(self) -> Optional[int]:
        cycles = [w.squash_cycle for w in self.windows if w.squash_cycle is not None]
        return min(cycles) if cycles else None

    @property
    def window_cycles(self) -> Optional[int]:
        """Measured length of the longest speculation window, in cycles."""
        lengths = [w.window_cycles for w in self.windows]
        return max(lengths) if lengths else None

    # ------------------------------------------------------------------
    # Contention provenance
    # ------------------------------------------------------------------
    @property
    def port_stall_cycles(self) -> int:
        """Total cycles ops spent data-ready but waiting for an FU port."""
        return sum(row.port_stall for row in self.ops)

    @property
    def cdb_stall_cycles(self) -> int:
        """Total cycles finished results waited for a CDB broadcast slot."""
        return sum(row.cdb_stall for row in self.ops)

    def port_occupancy(self) -> Dict[str, Dict[int, int]]:
        """Per-cycle busy-port counts per functional-unit pool.

        Sparse: only cycles with at least one busy port of a pool appear.  An
        op holds its port from issue until its broadcast, so CDB-stalled ops
        show up as prolonged occupancy -- the observable the contention
        covert channels time.
        """
        occupancy: Dict[str, Dict[int, int]] = {}
        for row in self.ops:
            if row.port is None:
                continue
            counts = occupancy.setdefault(row.port, {})
            for cycle in range(row.issue, row.complete):
                counts[cycle] = counts.get(cycle, 0) + 1
        return occupancy

    def key_events(self) -> List[TraceEvent]:
        """The load-bearing moments of the run, in cycle order."""
        events: List[TraceEvent] = []
        for window in self.windows:
            events.append(
                TraceEvent(window.open_cycle, "window_open", window.trigger_seq,
                           f"window {window.window_id} ({window.kind})")
            )
            for seq, cycle in window.sends:
                events.append(TraceEvent(cycle, "transmit", seq, "covert send issued"))
            events.append(
                TraceEvent(window.resolve_cycle, "resolve", window.trigger_seq,
                           "authorization resolved")
            )
            if window.squash_cycle is not None:
                events.append(
                    TraceEvent(window.squash_cycle, "squash", window.trigger_seq,
                               f"window {window.window_id} squashed")
                )
        return sorted(events, key=lambda event: (event.cycle, event.seq))

    def summary(self) -> Dict[str, object]:
        return {
            "scheduler": self.scheduler,
            "cycles": self.cycles,
            "ops": len(self.ops),
            "transient_ops": sum(1 for row in self.ops if row.op.transient),
            "windows": len(self.windows),
            "squashes": sum(1 for w in self.windows if w.outcome == "squash"),
            "transmit_cycle": self.transmit_cycle,
            "squash_cycle": self.squash_cycle,
            "window_cycles": self.window_cycles,
            "transmit_beats_squash": self.transmit_beats_squash,
            "port_stall_cycles": self.port_stall_cycles,
            "cdb_stall_cycles": self.cdb_stall_cycles,
        }

    def to_dict(self, include_ops: bool = False) -> Dict[str, object]:
        data = dict(self.summary())
        data["window_timings"] = [window.to_dict() for window in self.windows]
        data["events"] = [event.to_dict() for event in self.key_events()]
        if include_ops:
            data["op_rows"] = [row.to_dict() for row in self.ops]
        return data


def build_trace(
    ops: Sequence[DynamicOp],
    windows: Sequence[WindowRecord],
    schedule: Schedule,
    model: TimingModel,
    miss_latency: int,
    scheduler: str = "event",
) -> TimingTrace:
    """Assemble a :class:`TimingTrace` from the scheduler's cycle assignments."""
    timings: List[WindowTiming] = []
    killed: Dict[int, bool] = {}
    for window in windows:
        trigger = window.trigger_seq
        resolve = schedule.complete[trigger] + model.resolution_delay(
            window.kind, miss_latency
        )
        outcome = window.outcome or "squash"
        squash = resolve + model.squash_penalty if outcome == "squash" else None
        transient = window.transient_seqs
        open_cycle = (
            min(schedule.dispatch[seq] for seq in transient) if transient else resolve
        )
        sends = tuple(
            (seq, schedule.issue[seq]) for seq in transient if ops[seq].is_send
        )
        killed_count = 0
        if squash is not None:
            for seq in transient:
                if schedule.issue[seq] > squash:
                    killed[seq] = True
                    killed_count += 1
        timings.append(
            WindowTiming(
                window_id=window.window_id,
                kind=window.kind,
                outcome=outcome,
                trigger_seq=trigger,
                open_cycle=open_cycle,
                resolve_cycle=resolve,
                squash_cycle=squash,
                transient_ops=len(transient),
                sends=sends,
                killed_ops=killed_count,
            )
        )
    ready = schedule.ready if schedule.ready is not None else schedule.issue
    rows = []
    for op in ops:
        seq = op.seq
        execution = max(1, op.latency)
        rows.append(
            ScheduledOp(
                op=op,
                dispatch=schedule.dispatch[seq],
                issue=schedule.issue[seq],
                complete=schedule.complete[seq],
                retire=schedule.retire[seq],
                killed=killed.get(seq, False),
                ready=ready[seq],
                port=port_kind(op.kind),
                port_stall=schedule.issue[seq] - ready[seq],
                cdb_stall=schedule.complete[seq] - schedule.issue[seq] - execution,
            )
        )
    return TimingTrace(
        ops=rows, windows=timings, cycles=schedule.cycles, scheduler=scheduler
    )
