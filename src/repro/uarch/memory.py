"""Main memory, page tables and the MMU permission check.

The memory system is deliberately simple -- a sparse byte store plus a page
table with *present*, *user-accessible* and *writable* bits -- because the
speculative attacks only need (i) data that exists, (ii) a permission check
that can be bypassed transiently, and (iii) the ability to unmap pages
(KPTI / KAISER).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

PAGE_SIZE = 4096


class Fault(enum.Enum):
    """Faults the MMU can raise on an access."""

    NONE = "no fault"
    NOT_PRESENT = "page not present"
    PRIVILEGE = "supervisor page accessed from user mode"
    READ_ONLY = "write to read-only page"


@dataclass
class PageTableEntry:
    """Permissions of one virtual page."""

    present: bool = True
    user: bool = True
    writable: bool = True

    def copy(self) -> "PageTableEntry":
        return PageTableEntry(self.present, self.user, self.writable)


class PageTable:
    """A flat virtual-page -> permissions map with identity translation."""

    def __init__(self, default_user: bool = True) -> None:
        self._entries: Dict[int, PageTableEntry] = {}
        self._default_user = default_user

    @staticmethod
    def page_of(address: int) -> int:
        return address // PAGE_SIZE

    def entry(self, address: int) -> PageTableEntry:
        """The PTE covering ``address`` (auto-created with default permissions)."""
        page = self.page_of(address)
        if page not in self._entries:
            self._entries[page] = PageTableEntry(user=self._default_user)
        return self._entries[page]

    def map_range(
        self,
        start: int,
        size: int,
        *,
        present: bool = True,
        user: bool = True,
        writable: bool = True,
    ) -> None:
        """Set permissions for every page overlapping ``[start, start+size)``."""
        first = self.page_of(start)
        last = self.page_of(start + max(size, 1) - 1)
        for page in range(first, last + 1):
            self._entries[page] = PageTableEntry(present=present, user=user, writable=writable)

    def unmap_range(self, start: int, size: int) -> None:
        """Mark every page of the range not-present (KPTI-style unmapping)."""
        first = self.page_of(start)
        last = self.page_of(start + max(size, 1) - 1)
        for page in range(first, last + 1):
            entry = self._entries.setdefault(page, PageTableEntry())
            entry.present = False

    def check(self, address: int, *, supervisor: bool, write: bool = False) -> Fault:
        """The MMU permission check (the authorization of Meltdown-type attacks)."""
        entry = self.entry(address)
        if not entry.present:
            return Fault.NOT_PRESENT
        if not entry.user and not supervisor:
            return Fault.PRIVILEGE
        if write and not entry.writable:
            return Fault.READ_ONLY
        return Fault.NONE

    def is_present(self, address: int) -> bool:
        return self.entry(address).present


class MainMemory:
    """A sparse byte-addressable memory."""

    def __init__(self) -> None:
        self._bytes: Dict[int, int] = {}
        self.reads = 0
        self.writes = 0

    def read_byte(self, address: int) -> int:
        self.reads += 1
        return self._bytes.get(address, 0)

    def write_byte(self, address: int, value: int) -> None:
        self.writes += 1
        self._bytes[address] = value & 0xFF

    def read(self, address: int, size: int = 8) -> int:
        """Little-endian read of ``size`` bytes."""
        value = 0
        for offset in range(size):
            value |= self._bytes.get(address + offset, 0) << (8 * offset)
        self.reads += 1
        return value

    def write(self, address: int, value: int, size: int = 8) -> None:
        """Little-endian write of ``size`` bytes."""
        for offset in range(size):
            self._bytes[address + offset] = (value >> (8 * offset)) & 0xFF
        self.writes += 1

    def load_bytes(self, address: int, data: Iterable[int]) -> None:
        """Bulk-initialise memory contents."""
        for offset, byte in enumerate(data):
            self._bytes[address + offset] = byte & 0xFF

    def __contains__(self, address: int) -> bool:
        return address in self._bytes


@dataclass
class MemoryAccess:
    """Result of a checked memory access."""

    value: int
    fault: Fault


class MemorySystem:
    """Memory + page table, with permission-checked accesses."""

    def __init__(
        self,
        memory: Optional[MainMemory] = None,
        page_table: Optional[PageTable] = None,
    ) -> None:
        self.memory = memory if memory is not None else MainMemory()
        self.page_table = page_table if page_table is not None else PageTable()

    def read(self, address: int, size: int = 8, *, supervisor: bool = False) -> MemoryAccess:
        """Permission-checked read.

        The *data* is returned even when the check fails -- mirroring the
        hardware behaviour that Meltdown exploits (the permission check and
        the data read race inside the load instruction).  The caller (the
        pipeline) decides whether the faulting value may be forwarded
        transiently, depending on the configured defenses.
        """
        fault = self.page_table.check(address, supervisor=supervisor, write=False)
        if fault is Fault.NOT_PRESENT:
            # An unmapped page has no data to return, not even transiently --
            # this is exactly why KPTI defeats Meltdown.
            return MemoryAccess(value=0, fault=fault)
        return MemoryAccess(value=self.memory.read(address, size), fault=fault)

    def write(self, address: int, value: int, size: int = 8, *, supervisor: bool = False) -> Fault:
        """Permission-checked write (architectural, non-speculative)."""
        fault = self.page_table.check(address, supervisor=supervisor, write=True)
        if fault is Fault.NONE:
            self.memory.write(address, value, size)
        return fault
