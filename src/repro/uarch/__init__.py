"""Microarchitectural simulator: caches, predictors, buffers, speculative pipeline."""

from .buffers import LineFillBuffer, LoadPort, StoreBuffer, StoreBufferEntry
from .cache import CacheAccess, CacheStats, SetAssociativeCache
from .config import DEFAULT_CONFIG, UarchConfig
from .defenses import DEFENSE_STRATEGY, SimDefense
from .memory import Fault, MainMemory, MemorySystem, PAGE_SIZE, PageTable, PageTableEntry
from .pipeline import ExecutionResult, SpeculativeCPU
from .predictor import (
    BranchTargetBuffer,
    PredictorSuite,
    ReturnStackBuffer,
    TwoBitPredictor,
)
from .registers import FPUState, Flags, RegisterFile, SpecialRegisters
from .stats import SimStats
from .timing import TimingCPU, TimingModel, TimingResult, TimingTrace

__all__ = [
    "BranchTargetBuffer",
    "CacheAccess",
    "CacheStats",
    "DEFAULT_CONFIG",
    "DEFENSE_STRATEGY",
    "ExecutionResult",
    "FPUState",
    "Fault",
    "Flags",
    "LineFillBuffer",
    "LoadPort",
    "MainMemory",
    "MemorySystem",
    "PAGE_SIZE",
    "PageTable",
    "PageTableEntry",
    "PredictorSuite",
    "RegisterFile",
    "ReturnStackBuffer",
    "SetAssociativeCache",
    "SimDefense",
    "SimStats",
    "SpecialRegisters",
    "SpeculativeCPU",
    "StoreBuffer",
    "StoreBufferEntry",
    "TimingCPU",
    "TimingModel",
    "TimingResult",
    "TimingTrace",
    "TwoBitPredictor",
    "UarchConfig",
]
