"""A set-associative cache with timing, flushing and optional partitioning.

This is the shared micro-architectural resource of the paper's covert
channels: a speculatively executed load changes a line's state from absent to
present, the change survives the squash, and the receiver observes it through
access timing.  Partitioning support (a domain tag per line and per-lookup
domain) models DAWG-style isolation; speculative-fill tracking supports
CleanupSpec-style rollback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


@dataclass
class CacheLine:
    """One cache line: its tag, owning partition, and LRU timestamp."""

    tag: int
    partition: int = 0
    last_used: int = 0
    speculative: bool = False


@dataclass
class CacheAccess:
    """Result of one cache access."""

    hit: bool
    latency: int
    set_index: int
    evicted_tag: Optional[int] = None


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    flushes: int = 0
    fills: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """An LRU set-associative cache with per-line partition (domain) tags."""

    def __init__(
        self,
        sets: int = 64,
        ways: int = 8,
        line_size: int = 64,
        hit_latency: int = 4,
        miss_latency: int = 200,
    ) -> None:
        if sets <= 0 or ways <= 0 or line_size <= 0:
            raise ValueError("cache geometry must be positive")
        if line_size & (line_size - 1):
            raise ValueError("line size must be a power of two")
        self.sets = sets
        self.ways = ways
        self.line_size = line_size
        self.hit_latency = hit_latency
        self.miss_latency = miss_latency
        self._lines: List[List[CacheLine]] = [[] for _ in range(sets)]
        self._clock = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------
    def line_address(self, address: int) -> int:
        return address - (address % self.line_size)

    def set_index(self, address: int) -> int:
        return (address // self.line_size) % self.sets

    def tag(self, address: int) -> int:
        return address // self.line_size // self.sets

    # ------------------------------------------------------------------
    # Lookup / access
    # ------------------------------------------------------------------
    def _find(self, address: int, partition: int) -> Optional[CacheLine]:
        target_tag = self.tag(address)
        for line in self._lines[self.set_index(address)]:
            if line.tag == target_tag and line.partition == partition:
                return line
        return None

    def contains(self, address: int, partition: int = 0) -> bool:
        """Presence check without any state change (no LRU update)."""
        return self._find(address, partition) is not None

    def access(
        self,
        address: int,
        partition: int = 0,
        *,
        fill: bool = True,
        speculative: bool = False,
    ) -> CacheAccess:
        """Access the line containing ``address``.

        A hit refreshes LRU state; a miss optionally fills the line (evicting
        the LRU way of the set).  ``speculative`` marks the fill so it can be
        rolled back by :meth:`invalidate_speculative` (CleanupSpec).
        """
        self._clock += 1
        set_index = self.set_index(address)
        line = self._find(address, partition)
        if line is not None:
            line.last_used = self._clock
            self.stats.hits += 1
            return CacheAccess(hit=True, latency=self.hit_latency, set_index=set_index)
        self.stats.misses += 1
        evicted: Optional[int] = None
        if fill:
            evicted = self._fill(address, partition, speculative)
        return CacheAccess(
            hit=False, latency=self.miss_latency, set_index=set_index, evicted_tag=evicted
        )

    def _fill(self, address: int, partition: int, speculative: bool) -> Optional[int]:
        self.stats.fills += 1
        set_lines = self._lines[self.set_index(address)]
        evicted_tag: Optional[int] = None
        # Way allocation is per partition (DAWG-style): a fill only evicts
        # lines of its own partition, so one domain cannot displace another's.
        same_partition = [line for line in set_lines if line.partition == partition]
        if len(same_partition) >= self.ways:
            victim = min(same_partition, key=lambda line: line.last_used)
            set_lines.remove(victim)
            evicted_tag = victim.tag
        set_lines.append(
            CacheLine(
                tag=self.tag(address),
                partition=partition,
                last_used=self._clock,
                speculative=speculative,
            )
        )
        return evicted_tag

    def touch(self, address: int, partition: int = 0) -> None:
        """Bring a line into the cache without reporting timing (warm-up helper)."""
        self.access(address, partition=partition)

    # ------------------------------------------------------------------
    # Flushing and rollback
    # ------------------------------------------------------------------
    def flush_address(self, address: int) -> None:
        """Evict the line containing ``address`` from every partition (clflush)."""
        self.stats.flushes += 1
        target_tag = self.tag(address)
        set_lines = self._lines[self.set_index(address)]
        self._lines[self.set_index(address)] = [
            line for line in set_lines if line.tag != target_tag
        ]

    def flush_range(self, start: int, size: int) -> None:
        """Flush every line overlapping ``[start, start+size)``."""
        address = self.line_address(start)
        while address < start + size:
            self.flush_address(address)
            address += self.line_size

    def flush_all(self) -> None:
        self.stats.flushes += 1
        self._lines = [[] for _ in range(self.sets)]

    def invalidate_speculative(self, addresses: Optional[Set[int]] = None) -> int:
        """Remove speculative fills (CleanupSpec rollback).  Returns lines removed."""
        removed = 0
        for index, set_lines in enumerate(self._lines):
            kept = []
            for line in set_lines:
                is_target = line.speculative and (
                    addresses is None
                    or any(
                        self.set_index(address) == index and self.tag(address) == line.tag
                        for address in addresses
                    )
                )
                if is_target:
                    removed += 1
                else:
                    kept.append(line)
            self._lines[index] = kept
        return removed

    def commit_speculative(self) -> None:
        """Clear the speculative mark on every line (speculation validated)."""
        for set_lines in self._lines:
            for line in set_lines:
                line.speculative = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Number of valid lines currently cached."""
        return sum(len(set_lines) for set_lines in self._lines)

    def resident_addresses_in_set(self, set_index: int) -> List[Tuple[int, int]]:
        """(tag, partition) pairs of the lines in one set (for Prime+Probe tests)."""
        return [(line.tag, line.partition) for line in self._lines[set_index]]
