"""Micro-architectural buffers: store buffer, line fill buffer, load port.

These buffers are the secret sources of the MDS attack family (Figure 4):
Fallout samples the store buffer, RIDL the load ports and line fill buffers,
ZombieLoad the line fill buffers.  The store buffer is also the structure
whose delayed address resolution Spectre v4 exploits.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple


@dataclass
class StoreBufferEntry:
    """A store waiting to drain to memory."""

    sequence: int
    value: int
    size: int = 8
    #: The architectural address once resolved; ``None`` while the address
    #: computation is still delayed (the Spectre v4 window).
    address: Optional[int] = None

    @property
    def resolved(self) -> bool:
        return self.address is not None


class StoreBuffer:
    """In-order buffer of not-yet-drained stores."""

    def __init__(self, capacity: int = 32) -> None:
        self.capacity = capacity
        self._entries: List[StoreBufferEntry] = []
        self._sequence = 0

    def add(self, value: int, size: int = 8, address: Optional[int] = None) -> StoreBufferEntry:
        if len(self._entries) >= self.capacity:
            self._entries.pop(0)
        self._sequence += 1
        entry = StoreBufferEntry(
            sequence=self._sequence, value=value, size=size, address=address
        )
        self._entries.append(entry)
        return entry

    def resolve(self, entry: StoreBufferEntry, address: int) -> None:
        entry.address = address

    def has_unresolved(self) -> bool:
        return any(not entry.resolved for entry in self._entries)

    def unresolved_entries(self) -> List[StoreBufferEntry]:
        return [entry for entry in self._entries if not entry.resolved]

    def forward(self, address: int) -> Optional[StoreBufferEntry]:
        """Youngest resolved store to ``address`` (store-to-load forwarding)."""
        for entry in reversed(self._entries):
            if entry.resolved and entry.address == address:
                return entry
        return None

    def latest_values(self, count: int = 4) -> List[int]:
        """Most recent buffered values (what Fallout can sample)."""
        return [entry.value for entry in self._entries[-count:]]

    def drain(self) -> List[StoreBufferEntry]:
        """Remove and return every resolved entry (they are written to memory)."""
        drained = [entry for entry in self._entries if entry.resolved]
        self._entries = [entry for entry in self._entries if not entry.resolved]
        return drained

    def __len__(self) -> int:
        return len(self._entries)


class LineFillBuffer:
    """Recently filled cache lines, with their (possibly stale) data.

    Real line fill buffers keep in-flight data across privilege domains,
    which is what ZombieLoad and RIDL sample.  We keep the last ``capacity``
    filled line addresses and a small data snippet for each.
    """

    def __init__(self, capacity: int = 12) -> None:
        self.capacity = capacity
        self._entries: Deque[Tuple[int, int]] = deque(maxlen=capacity)

    def record_fill(self, line_address: int, value: int) -> None:
        self._entries.append((line_address, value))

    def stale_values(self) -> List[int]:
        """Values an MDS-style faulting load could sample."""
        return [value for _, value in self._entries]

    def most_recent(self) -> Optional[int]:
        return self._entries[-1][1] if self._entries else None

    def clear(self) -> None:
        """Flush the buffer (the VERW-style MDS mitigation)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class LoadPort:
    """The last value that crossed each load port (RIDL's other source)."""

    def __init__(self, ports: int = 2) -> None:
        self.ports = ports
        self._last: Dict[int, int] = {}
        self._next_port = 0

    def record(self, value: int) -> None:
        self._last[self._next_port] = value
        self._next_port = (self._next_port + 1) % self.ports

    def stale_values(self) -> List[int]:
        return list(self._last.values())

    def clear(self) -> None:
        self._last.clear()
