"""Branch prediction structures: direction predictor, BTB and return stack buffer.

These are the "hardware prediction" features the Spectre family exploits: the
attacker mis-trains them so the victim speculates down the attacker's chosen
path while the real authorization (branch resolution) is delayed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


class TwoBitPredictor:
    """A per-PC two-bit saturating-counter direction predictor."""

    STRONG_NOT_TAKEN = 0
    WEAK_NOT_TAKEN = 1
    WEAK_TAKEN = 2
    STRONG_TAKEN = 3

    def __init__(self, initial: int = WEAK_NOT_TAKEN) -> None:
        if not 0 <= initial <= 3:
            raise ValueError("two-bit counter must be in [0, 3]")
        self._initial = initial
        self._counters: Dict[int, int] = {}
        self.predictions = 0
        self.mispredictions = 0

    def has_entry(self, pc: int) -> bool:
        """Whether this branch has any history.

        The pipeline only speculates on branches with predictor history --
        flushing the predictor (strategy 4) therefore removes the attacker's
        ability to steer speculation.
        """
        return pc in self._counters

    def predict(self, pc: int) -> bool:
        """``True`` means predicted taken."""
        self.predictions += 1
        return self._counters.get(pc, self._initial) >= self.WEAK_TAKEN

    def train(self, pc: int, taken: bool) -> None:
        """Update the counter with the actual outcome."""
        counter = self._counters.get(pc, self._initial)
        counter = min(counter + 1, 3) if taken else max(counter - 1, 0)
        self._counters[pc] = counter

    def record_outcome(self, predicted: bool, actual: bool) -> None:
        if predicted != actual:
            self.mispredictions += 1

    def flush(self) -> None:
        """Clear all counters (IBPB / predictor invalidation)."""
        self._counters.clear()

    def counter(self, pc: int) -> int:
        return self._counters.get(pc, self._initial)


class BranchTargetBuffer:
    """Predicted targets for indirect branches (the Spectre v2 vector)."""

    def __init__(self) -> None:
        self._targets: Dict[int, int] = {}

    def predict(self, pc: int) -> Optional[int]:
        return self._targets.get(pc)

    def train(self, pc: int, target: int) -> None:
        self._targets[pc] = target

    def flush(self) -> None:
        self._targets.clear()

    def __contains__(self, pc: int) -> bool:
        return pc in self._targets

    def __len__(self) -> int:
        return len(self._targets)


class ReturnStackBuffer:
    """A bounded return-address predictor stack (the Spectre-RSB vector)."""

    def __init__(self, depth: int = 16) -> None:
        if depth <= 0:
            raise ValueError("RSB depth must be positive")
        self.depth = depth
        self._stack: List[int] = []
        self.underflows = 0

    def push(self, return_address: int) -> None:
        if len(self._stack) >= self.depth:
            # Oldest entry falls off the bottom.
            self._stack.pop(0)
        self._stack.append(return_address)

    def pop(self) -> Optional[int]:
        """Predicted return target; ``None`` on underflow."""
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    def poison(self, target: int) -> None:
        """Overwrite the top entry (models attacker manipulation of the RSB)."""
        if self._stack:
            self._stack[-1] = target
        else:
            self._stack.append(target)

    def stuff(self, filler: int, count: Optional[int] = None) -> None:
        """RSB stuffing defense: refill the stack with benign targets."""
        self._stack = [filler] * (count if count is not None else self.depth)

    def flush(self) -> None:
        self._stack.clear()

    def __len__(self) -> int:
        return len(self._stack)


@dataclass
class PredictorSuite:
    """All prediction structures of the simulated core."""

    direction: TwoBitPredictor = field(default_factory=TwoBitPredictor)
    btb: BranchTargetBuffer = field(default_factory=BranchTargetBuffer)
    rsb: ReturnStackBuffer = field(default_factory=ReturnStackBuffer)

    def flush_all(self) -> None:
        """Flush every predictor (context switch with predictor invalidation)."""
        self.direction.flush()
        self.btb.flush()
        self.rsb.flush()
