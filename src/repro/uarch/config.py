"""Configuration of the microarchitectural simulator."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet, Iterable

from .defenses import SimDefense


@dataclass(frozen=True)
class UarchConfig:
    """Parameters of the simulated out-of-order speculative core."""

    # Cache geometry and timing.
    cache_sets: int = 64
    cache_ways: int = 8
    line_size: int = 64
    cache_hit_latency: int = 4
    cache_miss_latency: int = 200
    #: Latency threshold separating a "fast" (hit) probe from a "slow" (miss)
    #: probe in the timing covert channels.
    hit_threshold: int = 80
    #: Execution latency of the multiplier pipe in the timing plane (cycles).
    #: Multi-cycle by default: a long FU occupancy is what makes the shared
    #: multiplier the classic functional-unit contention transmitter.
    mul_latency: int = 4

    # Speculation parameters.
    #: Maximum number of transient instructions executed in one window
    #: (roughly the ROB capacity available past the stalled authorization).
    speculative_window: int = 64
    #: Whether faults raised by transient/illegal accesses are suppressed so
    #: the attacker program keeps running (Meltdown attackers install a
    #: signal handler or use TSX for exactly this purpose).
    suppress_faults: bool = True

    #: Active defenses.
    defenses: FrozenSet[SimDefense] = frozenset()

    #: Maximum instructions executed per :meth:`SpeculativeCPU.run` call.
    max_instructions: int = 100_000

    def with_defenses(self, *defenses: SimDefense) -> "UarchConfig":
        """A copy of this configuration with the given defenses enabled."""
        return replace(self, defenses=frozenset(self.defenses) | set(defenses))

    def without_defenses(self) -> "UarchConfig":
        """A copy of this configuration with every defense disabled."""
        return replace(self, defenses=frozenset())

    def has(self, defense: SimDefense) -> bool:
        return defense in self.defenses

    @property
    def cache_size(self) -> int:
        return self.cache_sets * self.cache_ways * self.line_size


DEFAULT_CONFIG = UarchConfig()
