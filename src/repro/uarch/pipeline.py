"""The speculative out-of-order core: architectural execution plus transient windows.

The simulator executes programs of the tiny ISA with exactly the
micro-architectural behaviours the speculative execution attacks rely on:

* **Delayed authorization opens a speculation window.**  A conditional branch
  whose flags come from a cache miss, an indirect branch / return whose
  target is not yet known, a load that faults on the permission check, a load
  that may bypass an older store with an unresolved address, a privileged
  register read from user mode, or a floating-point access owned by another
  context -- each triggers a *transient window* in which younger instructions
  execute with scratch register state.
* **Architectural state is rolled back, micro-architectural state is not.**
  When the window squashes, register changes disappear but cache fills,
  line-fill-buffer and load-port contents persist -- that is the covert
  channel.
* **Defenses are ordering constraints.**  Every member of
  :class:`~repro.uarch.defenses.SimDefense` suppresses one specific behaviour
  inside the transient window (no access, no forwarding, no cache change,
  rollback, partitioning, or predictor flushing), mirroring the paper's
  defense strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..isa.instructions import (
    Alu,
    Branch,
    Call,
    Clflush,
    Cmp,
    Fence,
    FpExtract,
    FpLoad,
    Halt,
    IndirectJmp,
    Instruction,
    Jmp,
    Load,
    Mov,
    Nop,
    Rdmsr,
    Rdtsc,
    Ret,
    Store,
)
from ..isa.operands import FLAGS, Immediate, Label, MemoryOperand, Register
from ..isa.program import DataSymbol, Program
from .buffers import LineFillBuffer, LoadPort, StoreBuffer, StoreBufferEntry
from .cache import SetAssociativeCache
from .config import DEFAULT_CONFIG, UarchConfig
from .defenses import SimDefense
from .memory import Fault, MemorySystem, PAGE_SIZE
from .predictor import PredictorSuite
from .registers import MASK64, Flags, FPUState, RegisterFile, SpecialRegisters
from .stats import SimStats


@dataclass
class ExecutionResult:
    """Outcome of one :meth:`SpeculativeCPU.run` call."""

    halted: bool
    instructions: int
    stats: SimStats
    faults: List[str] = field(default_factory=list)

    @property
    def leaked_transiently(self) -> bool:
        """Whether any speculative load executed during the run."""
        return self.stats.speculative_loads > 0


class _StopWindow(Exception):
    """Internal: terminate the current transient window."""


class SpeculativeCPU:
    """A functional simulator of a speculative out-of-order core."""

    #: Cache partition used by victim / sender accesses.
    VICTIM_PARTITION = 0
    #: Cache partition used by the attacker's probes when DAWG is enabled.
    RECEIVER_PARTITION = 1

    def __init__(
        self,
        program: Program,
        config: UarchConfig = DEFAULT_CONFIG,
        *,
        supervisor: bool = False,
    ) -> None:
        self.program = program
        self.config = config
        self.supervisor = supervisor
        self.context_id = 0

        self.registers = RegisterFile()
        self.flags = Flags()
        self.flags_slow = False
        self.special_registers = SpecialRegisters()
        self.fpu = FPUState()

        self.memory = MemorySystem()
        self.cache = SetAssociativeCache(
            sets=config.cache_sets,
            ways=config.cache_ways,
            line_size=config.line_size,
            hit_latency=config.cache_hit_latency,
            miss_latency=config.cache_miss_latency,
        )
        self.predictors = PredictorSuite()
        self.store_buffer = StoreBuffer()
        self.fill_buffer = LineFillBuffer()
        self.load_port = LoadPort()

        self.stats = SimStats()
        self.call_stack: List[int] = []
        self.fault_recovery_pc: Optional[int] = None
        #: Pending stores whose addresses are architecturally known to the
        #: simulator but not yet "resolved" by the core (Spectre v4 window).
        self._pending_store_addresses: Dict[int, int] = {}

        self._initialise_memory()

    # ==================================================================
    # Setup helpers
    # ==================================================================
    def _initialise_memory(self) -> None:
        for symbol in self.program.symbols.values():
            if symbol.initial:
                self.memory.memory.load_bytes(symbol.address, symbol.initial)
            if symbol.kernel:
                self.memory.page_table.map_range(
                    symbol.address, symbol.size, user=False, present=True
                )
                if self.config.has(SimDefense.KERNEL_ISOLATION):
                    self.memory.page_table.unmap_range(symbol.address, symbol.size)

    # -- harness-facing helpers -----------------------------------------
    def write_memory(self, address: int, value: int, size: int = 1) -> None:
        """Directly initialise memory contents (test/harness helper)."""
        self.memory.memory.write(address, value, size)

    def read_memory(self, address: int, size: int = 1) -> int:
        return self.memory.memory.read(address, size)

    def set_register(self, name: str, value: int) -> None:
        self.registers.write(name, value)

    def get_register(self, name: str) -> int:
        return self.registers.read(name)

    def flush_address(self, address: int) -> None:
        self.cache.flush_address(address)

    def flush_range(self, start: int, size: int) -> None:
        self.cache.flush_range(start, size)

    def flush_symbol(self, name: str) -> None:
        symbol = self.program.symbol(name)
        self.cache.flush_range(symbol.address, symbol.size)

    def touch(self, address: int) -> None:
        """Warm a cache line in the victim partition (harness helper)."""
        self.cache.access(address, partition=self.VICTIM_PARTITION)

    def victim_access(self, address: int, size: int = 1) -> int:
        """A legal access performed by a victim sharing this core.

        The access goes through the full memory hierarchy, so it warms the
        cache *and* leaves the data in the line fill buffer and load ports --
        the state the MDS attacks (RIDL, ZombieLoad, Fallout) sample.
        """
        value, _ = self._read_memory_value(address, size, transient=False, speculative=False)
        return value

    @property
    def receiver_partition(self) -> int:
        if self.config.has(SimDefense.PARTITIONED_CACHE):
            return self.RECEIVER_PARTITION
        return self.VICTIM_PARTITION

    def probe(self, address: int, *, fill: bool = False) -> int:
        """Timed probe access used by the receiver (Flush+Reload / Prime+Probe).

        Probes default to non-allocating accesses so that probing one entry
        of the 256-entry probe array does not evict the entry the victim
        touched -- the timing information is the same either way.
        """
        return self.cache.access(
            address, partition=self.receiver_partition, fill=fill
        ).latency

    def context_switch(self, new_context: int, *, supervisor: Optional[bool] = None) -> None:
        """Switch context; with the predictor-flush defense this clears predictors."""
        self.context_id = new_context
        if supervisor is not None:
            self.supervisor = supervisor
        if self.config.has(SimDefense.FLUSH_PREDICTORS):
            self.predictors.flush_all()

    def set_fault_handler(self, target: Union[int, str, None]) -> None:
        """Where execution resumes after a suppressed fault (the attacker's handler)."""
        if isinstance(target, str):
            self.fault_recovery_pc = self.program.label_index(target)
        else:
            self.fault_recovery_pc = target

    def train_branch(self, label_or_index: Union[int, str], taken: bool, repeat: int = 4) -> None:
        """Mis-train the direction predictor for a branch (attack step 1b)."""
        pc = (
            self.program.label_index(label_or_index)
            if isinstance(label_or_index, str)
            else label_or_index
        )
        for _ in range(repeat):
            self.predictors.direction.train(pc, taken)

    def train_btb(self, branch_index: int, target_index: int) -> None:
        """Poison the BTB entry of an indirect branch (Spectre v2 setup)."""
        self.predictors.btb.train(branch_index, target_index)

    def poison_rsb(self, target_index: int) -> None:
        """Overwrite the top RSB entry (Spectre-RSB setup)."""
        self.predictors.rsb.poison(target_index)

    # ==================================================================
    # Main execution loop
    # ==================================================================
    def run(self, start: Union[int, str] = 0, max_instructions: Optional[int] = None) -> ExecutionResult:
        """Execute the program architecturally from ``start`` until halt."""
        pc = self.program.label_index(start) if isinstance(start, str) else start
        budget = max_instructions if max_instructions is not None else self.config.max_instructions
        executed = 0
        halted = False
        while 0 <= pc < len(self.program) and executed < budget:
            instruction = self.program[pc]
            executed += 1
            self.stats.instructions_retired += 1
            self.stats.cycles += 1
            next_pc = self._execute_instruction(pc, instruction)
            if next_pc is None:
                halted = True
                break
            pc = next_pc
        return ExecutionResult(
            halted=halted,
            instructions=executed,
            stats=self.stats,
            faults=list(self.stats.fault_log),
        )

    def _execute_instruction(self, pc: int, instruction: Instruction) -> Optional[int]:
        """Execute one fetched instruction; ``None`` means the program halted.

        The per-instruction hook subclasses wrap to observe the architectural
        stream (the timing core records its dynamic-op trace here).
        """
        if isinstance(instruction, Halt):
            return None
        return self._step(pc, instruction)

    # ------------------------------------------------------------------
    def _step(self, pc: int, instruction: Instruction) -> int:
        """Execute one instruction architecturally; return the next pc."""
        if isinstance(instruction, Branch):
            return self._step_branch(pc, instruction)
        if isinstance(instruction, Jmp):
            return self.program.label_index(instruction.target.name)
        if isinstance(instruction, IndirectJmp):
            return self._step_indirect_jump(pc, instruction)
        if isinstance(instruction, Call):
            self.call_stack.append(pc + 1)
            self.predictors.rsb.push(pc + 1)
            return self.program.label_index(instruction.target.name)
        if isinstance(instruction, Ret):
            return self._step_return(pc)
        if isinstance(instruction, Load):
            return self._step_load(pc, instruction)
        if isinstance(instruction, Store):
            return self._step_store(pc, instruction)
        if isinstance(instruction, Cmp):
            self._exec_cmp(instruction, transient=False, blocked=set())
            return pc + 1
        if isinstance(instruction, Rdmsr):
            return self._step_rdmsr(pc, instruction)
        if isinstance(instruction, (FpLoad, FpExtract)):
            return self._step_fp(pc, instruction)
        # Remaining instructions have no speculation trigger.
        self._exec_simple(instruction, transient=False, blocked=set())
        return pc + 1

    # ==================================================================
    # Speculation triggers
    # ==================================================================
    def _step_branch(self, pc: int, instruction: Branch) -> int:
        predictor = self.predictors.direction
        actual_taken = self.flags.evaluate(instruction.condition)
        taken_target = self.program.label_index(instruction.target.name)
        if self.flags_slow and predictor.has_entry(pc):
            predicted_taken = predictor.predict(pc)
            self.stats.branch_predictions += 1
            predicted_pc = taken_target if predicted_taken else pc + 1
            self._run_transient_window(predicted_pc)
            predictor.record_outcome(predicted_taken, actual_taken)
            if predicted_taken != actual_taken:
                self.stats.branch_mispredictions += 1
                self._squash()
            else:
                self._commit_speculation()
        predictor.train(pc, actual_taken)
        self.flags_slow = False
        return taken_target if actual_taken else pc + 1

    def _step_indirect_jump(self, pc: int, instruction: IndirectJmp) -> int:
        actual_target = self.registers.read(instruction.target.name)
        if self.registers.is_slow(instruction.target.name):
            predicted = self.predictors.btb.predict(pc)
            if predicted is not None:
                self.stats.branch_predictions += 1
                self._run_transient_window(predicted)
                if predicted != actual_target:
                    self.stats.branch_mispredictions += 1
                    self._squash()
                else:
                    self._commit_speculation()
            self.registers.mark_ready(instruction.target.name)
        self.predictors.btb.train(pc, actual_target)
        return actual_target

    def _step_return(self, pc: int) -> int:
        if not self.call_stack:
            return len(self.program)  # falls off the end: treated as halt
        actual_target = self.call_stack.pop()
        predicted = self.predictors.rsb.pop()
        if predicted is not None and predicted != actual_target:
            self.stats.branch_predictions += 1
            self.stats.branch_mispredictions += 1
            self._run_transient_window(predicted)
            self._squash()
        return actual_target

    def _step_load(self, pc: int, instruction: Load) -> int:
        address, address_slow = self._effective_address(instruction.address, blocked=set())
        assert address is not None
        fault = self.memory.page_table.check(address, supervisor=self.supervisor)

        bypassed_store = self._find_bypassable_store(address)
        if fault is Fault.NONE and bypassed_store is not None:
            return self._load_with_store_bypass(pc, instruction, address, bypassed_store)
        if fault is not Fault.NONE:
            return self._faulting_load(pc, instruction, address, fault)

        value, latency = self._read_memory_value(
            address, instruction.size, transient=False, speculative=False
        )
        self.stats.cycles += latency
        slow = latency >= self.config.cache_miss_latency
        self.registers.write(instruction.dst.name, value, slow=slow)
        return pc + 1

    def _step_store(self, pc: int, instruction: Store) -> int:
        address, address_slow = self._effective_address(instruction.address, blocked=set())
        assert address is not None
        value = self._source_value(instruction.src, blocked=set())
        assert value is not None
        if address_slow and not self.config.has(SimDefense.NO_STORE_BYPASS):
            # The store sits in the store buffer with its address unresolved;
            # a younger load may speculatively bypass it (Spectre v4).
            entry = self.store_buffer.add(value, instruction.size, address=None)
            self._pending_store_addresses[entry.sequence] = address
        else:
            entry = self.store_buffer.add(value, instruction.size, address=address)
            self.memory.memory.write(address, value, instruction.size)
            self.cache.access(address, partition=self.VICTIM_PARTITION)
        return pc + 1

    def _step_rdmsr(self, pc: int, instruction: Rdmsr) -> int:
        value = self.special_registers.read(instruction.msr)
        if self.supervisor:
            self.registers.write(instruction.dst.name, value)
            return pc + 1
        # Unprivileged RDMSR: the privilege check is the delayed authorization;
        # the value may be forwarded transiently before the fault is raised.
        transient_value: Optional[int] = value
        if self.config.has(SimDefense.PREVENT_SPECULATIVE_LOADS):
            transient_value = None
        elif self.config.has(SimDefense.NO_SPECULATIVE_FORWARDING):
            transient_value = None
        self._run_transient_window(
            pc + 1,
            overrides={instruction.dst.name: transient_value},
        )
        self._squash()
        return self._raise_fault(pc, f"rdmsr #{instruction.msr:#x} at user privilege", instruction.dst.name)

    def _step_fp(self, pc: int, instruction: Union[FpLoad, FpExtract]) -> int:
        if self.fpu.owner == self.context_id:
            self._exec_simple(instruction, transient=False, blocked=set())
            return pc + 1
        # Lazy-FP: the ownership check is delayed; the stale FP state of the
        # previous context can be read transiently before the fault.
        overrides: Dict[str, Optional[int]] = {}
        if isinstance(instruction, FpExtract):
            stale = self.fpu.read(instruction.src.name)
            blocked = self.config.has(SimDefense.PREVENT_SPECULATIVE_LOADS) or self.config.has(
                SimDefense.NO_SPECULATIVE_FORWARDING
            )
            overrides[instruction.dst.name] = None if blocked else stale
        self._run_transient_window(pc + 1, overrides=overrides)
        self._squash()
        destination = instruction.dst.name if isinstance(instruction, FpExtract) else None
        return self._raise_fault(pc, "lazy FPU ownership fault", destination)

    # ------------------------------------------------------------------
    def _find_bypassable_store(self, load_address: int) -> Optional[StoreBufferEntry]:
        """An older unresolved store that the load would actually alias with."""
        for entry in self.store_buffer.unresolved_entries():
            if self._pending_store_addresses.get(entry.sequence) == load_address:
                return entry
        return None

    def _load_with_store_bypass(
        self,
        pc: int,
        instruction: Load,
        address: int,
        entry: StoreBufferEntry,
    ) -> int:
        """Spectre v4: the load speculatively reads stale memory, then is squashed."""
        stale_value, _ = self._read_memory_value(
            address, instruction.size, transient=True, speculative=True
        )
        self.stats.store_bypasses += 1
        forwarded: Optional[int] = stale_value
        if self.config.has(SimDefense.PREVENT_SPECULATIVE_LOADS) or self.config.has(
            SimDefense.NO_SPECULATIVE_FORWARDING
        ):
            forwarded = None
        self._run_transient_window(pc + 1, overrides={instruction.dst.name: forwarded})
        self._squash()
        # Address disambiguation completes: the store resolves and the load
        # architecturally receives the store's value.
        actual_address = self._pending_store_addresses.pop(entry.sequence)
        self.store_buffer.resolve(entry, actual_address)
        self.memory.memory.write(actual_address, entry.value, entry.size)
        self.cache.access(actual_address, partition=self.VICTIM_PARTITION)
        self.registers.write(instruction.dst.name, entry.value)
        return pc + 1

    def _faulting_load(self, pc: int, instruction: Load, address: int, fault: Fault) -> int:
        """Meltdown / Foreshadow / MDS-style faulting load."""
        transient_value: Optional[int]
        if fault is Fault.NOT_PRESENT:
            if self.cache.contains(address, self.VICTIM_PARTITION):
                # L1 Terminal Fault (Foreshadow): the PTE is not present but
                # the data still sits in the L1 cache and is forwarded anyway.
                transient_value = self.memory.memory.read(address, instruction.size)
            else:
                # The page is unmapped and uncached (e.g. KPTI): there is
                # nothing to read from memory, but a faulting load may still
                # sample stale data from internal buffers (the MDS attacks).
                transient_value = self._mds_forwarded_value()
        else:
            transient_value = self.memory.memory.read(address, instruction.size)
        if self.config.has(SimDefense.PREVENT_SPECULATIVE_LOADS):
            transient_value = None
            self.stats.speculative_loads_blocked += 1
        elif self.config.has(SimDefense.NO_SPECULATIVE_FORWARDING):
            transient_value = None
        self._run_transient_window(pc + 1, overrides={instruction.dst.name: transient_value})
        self._squash()
        return self._raise_fault(
            pc,
            f"{fault.value} on load of {address:#x}",
            instruction.dst.name,
        )

    def _mds_forwarded_value(self) -> Optional[int]:
        """Stale data a faulting load may pick up from internal buffers (MDS)."""
        recent = self.fill_buffer.most_recent()
        if recent is not None:
            return recent
        stale = self.load_port.stale_values()
        if stale:
            return stale[-1]
        buffered = self.store_buffer.latest_values(1)
        if buffered:
            return buffered[-1]
        return None

    def _raise_fault(self, pc: int, description: str, destination: Optional[str]) -> int:
        suppressed = self.config.suppress_faults
        self.stats.record_fault(description, suppressed)
        if not suppressed:
            return len(self.program)  # terminate
        if destination is not None:
            self.registers.write(destination, 0)
        if self.fault_recovery_pc is not None:
            return self.fault_recovery_pc
        return pc + 1

    # ==================================================================
    # Transient (speculative) execution
    # ==================================================================
    def _run_transient_window(
        self,
        start_pc: int,
        overrides: Optional[Dict[str, Optional[int]]] = None,
    ) -> int:
        """Execute transient instructions starting at ``start_pc``.

        ``overrides`` seeds scratch register values (e.g. the illegally read
        secret); a value of ``None`` marks the register as *blocked* -- its
        value is withheld from transient consumers (defense strategy 2).
        Returns the number of transient instructions executed.
        """
        self.stats.speculative_windows += 1
        snapshot = self.registers.snapshot()
        flags_snapshot = (self.flags.lhs, self.flags.rhs, self.flags_slow)
        blocked: Set[str] = set()
        self._speculative_fills: Set[int] = set()
        for name, value in (overrides or {}).items():
            if value is None:
                blocked.add(name)
            else:
                self.registers.write(name, value)

        executed = 0
        pc = start_pc
        limit = self.config.speculative_window
        try:
            while 0 <= pc < len(self.program) and executed < limit:
                instruction = self.program[pc]
                executed += 1
                self.stats.transient_instructions += 1
                pc = self._transient_step(pc, instruction, blocked)
        except _StopWindow:
            pass

        self.registers.restore(snapshot)
        self.flags.lhs, self.flags.rhs, self.flags_slow = flags_snapshot
        return executed

    def _transient_step(self, pc: int, instruction: Instruction, blocked: Set[str]) -> int:
        if isinstance(instruction, (Halt, Fence)):
            raise _StopWindow
        if isinstance(instruction, Branch):
            if FLAGS in blocked:
                raise _StopWindow
            taken = self.flags.evaluate(instruction.condition)
            return self.program.label_index(instruction.target.name) if taken else pc + 1
        if isinstance(instruction, Jmp):
            return self.program.label_index(instruction.target.name)
        if isinstance(instruction, IndirectJmp):
            if instruction.target.name in blocked:
                raise _StopWindow
            return self.registers.read(instruction.target.name)
        if isinstance(instruction, Call):
            return self.program.label_index(instruction.target.name)
        if isinstance(instruction, Ret):
            raise _StopWindow
        if isinstance(instruction, Load):
            self._transient_load(instruction, blocked)
            return pc + 1
        if isinstance(instruction, Store):
            # Speculative stores stay in the store buffer and never reach
            # memory; they do not create an observable state change here.
            return pc + 1
        if isinstance(instruction, Cmp):
            self._exec_cmp(instruction, transient=True, blocked=blocked)
            return pc + 1
        if isinstance(instruction, Rdmsr):
            # Nested privileged read inside a window: value forwarded unless blocked.
            if not self.supervisor and (
                self.config.has(SimDefense.PREVENT_SPECULATIVE_LOADS)
                or self.config.has(SimDefense.NO_SPECULATIVE_FORWARDING)
            ):
                blocked.add(instruction.dst.name)
            else:
                self.registers.write(instruction.dst.name, self.special_registers.read(instruction.msr))
                blocked.discard(instruction.dst.name)
            return pc + 1
        self._exec_simple(instruction, transient=True, blocked=blocked)
        return pc + 1

    def _transient_load(self, instruction: Load, blocked: Set[str]) -> None:
        address, _ = self._effective_address(instruction.address, blocked=blocked)
        if address is None:
            # The address depends on a blocked (withheld) value: the load
            # cannot even issue -- this is how strategy 2 stops the send.
            blocked.add(instruction.dst.name)
            self.stats.speculative_loads_blocked += 1
            return
        if self.config.has(SimDefense.PREVENT_SPECULATIVE_LOADS):
            blocked.add(instruction.dst.name)
            self.stats.speculative_loads_blocked += 1
            return
        if self.config.has(SimDefense.DELAY_SPECULATIVE_MISSES) and not self.cache.contains(
            address, self.VICTIM_PARTITION
        ):
            blocked.add(instruction.dst.name)
            self.stats.speculative_loads_blocked += 1
            return
        self.stats.speculative_loads += 1
        value, _ = self._read_memory_value(
            address, instruction.size, transient=True, speculative=True
        )
        if self.config.has(SimDefense.NO_SPECULATIVE_FORWARDING):
            blocked.add(instruction.dst.name)
            return
        self.registers.write(instruction.dst.name, value)
        blocked.discard(instruction.dst.name)

    def _squash(self) -> None:
        """Mis-speculation detected: discard speculative micro-architectural state
        where a defense says so (architectural state was never committed)."""
        self.stats.squashes += 1
        if self.config.has(SimDefense.CLEANUP_ON_SQUASH):
            rolled_back = self.cache.invalidate_speculative(getattr(self, "_speculative_fills", None))
            self.stats.speculative_fills_rolled_back += rolled_back
        self._speculative_fills = set()

    def _commit_speculation(self) -> None:
        """Speculation validated: speculative fills become permanent."""
        self.cache.commit_speculative()
        self._speculative_fills = set()

    # ==================================================================
    # Shared execution helpers
    # ==================================================================
    def _effective_address(
        self, operand: MemoryOperand, blocked: Set[str]
    ) -> Tuple[Optional[int], bool]:
        """(address, produced-by-slow-value).  ``None`` when a source is blocked."""
        address = 0
        slow = False
        if operand.symbol is not None:
            address += self.program.symbol_address(operand.symbol)
        if operand.base is not None:
            if operand.base.name in blocked:
                return None, False
            address += self.registers.read(operand.base.name)
            slow |= self.registers.is_slow(operand.base.name)
        if operand.index is not None:
            if operand.index.name in blocked:
                return None, False
            address += self.registers.read(operand.index.name) * operand.scale
            slow |= self.registers.is_slow(operand.index.name)
        address += operand.displacement
        return address & MASK64, slow

    def _source_value(
        self, source: Union[Register, Immediate, Label], blocked: Set[str]
    ) -> Optional[int]:
        if isinstance(source, Register):
            if source.name in blocked:
                return None
            return self.registers.read(source.name)
        if isinstance(source, Immediate):
            return source.value
        return self.program.symbol_address(source.name)

    def _read_memory_value(
        self, address: int, size: int, *, transient: bool, speculative: bool
    ) -> Tuple[int, int]:
        """Read memory through the cache hierarchy.  Returns (value, latency)."""
        forwarded = self.store_buffer.forward(address)
        if forwarded is not None:
            value = forwarded.value
            latency = self.config.cache_hit_latency
        else:
            value = self.memory.memory.read(address, size)
            fill = True
            if transient and self.config.has(SimDefense.INVISIBLE_SPECULATION):
                fill = False
            access = self.cache.access(
                address,
                partition=self.VICTIM_PARTITION,
                fill=fill,
                speculative=speculative,
            )
            latency = access.latency
            if fill and not access.hit:
                if speculative:
                    self.stats.speculative_fills += 1
                    self._speculative_fills = getattr(self, "_speculative_fills", set())
                    self._speculative_fills.add(address)
                self.fill_buffer.record_fill(self.cache.line_address(address), value)
        self.load_port.record(value)
        return value, latency

    def _exec_cmp(self, instruction: Cmp, *, transient: bool, blocked: Set[str]) -> None:
        if instruction.lhs.name in blocked:
            blocked.add(FLAGS)
            return
        lhs = self.registers.read(instruction.lhs.name)
        lhs_slow = self.registers.is_slow(instruction.lhs.name)
        rhs_slow = False
        if isinstance(instruction.rhs, MemoryOperand):
            address, _ = self._effective_address(instruction.rhs, blocked=blocked)
            if address is None:
                blocked.add(FLAGS)
                return
            rhs, latency = self._read_memory_value(
                address, 8, transient=transient, speculative=transient
            )
            rhs_slow = latency >= self.config.cache_miss_latency
            if not transient:
                self.stats.cycles += latency
        elif isinstance(instruction.rhs, Register):
            if instruction.rhs.name in blocked:
                blocked.add(FLAGS)
                return
            rhs = self.registers.read(instruction.rhs.name)
            rhs_slow = self.registers.is_slow(instruction.rhs.name)
        else:
            rhs = instruction.rhs.value
        self.flags.lhs, self.flags.rhs = lhs, rhs
        self.flags_slow = lhs_slow or rhs_slow
        blocked.discard(FLAGS)

    def _exec_simple(self, instruction: Instruction, *, transient: bool, blocked: Set[str]) -> None:
        """Instructions with no speculation trigger of their own."""
        if isinstance(instruction, Mov):
            value = self._source_value(instruction.src, blocked)
            if value is None:
                blocked.add(instruction.dst.name)
                return
            slow = isinstance(instruction.src, Register) and self.registers.is_slow(
                instruction.src.name
            )
            self.registers.write(instruction.dst.name, value, slow=slow)
            blocked.discard(instruction.dst.name)
            return
        if isinstance(instruction, Alu):
            self._exec_alu(instruction, blocked)
            return
        if isinstance(instruction, Clflush):
            address, _ = self._effective_address(instruction.address, blocked=blocked)
            if address is not None:
                self.cache.flush_address(address)
            return
        if isinstance(instruction, Rdtsc):
            self.registers.write(instruction.dst.name, self.stats.cycles)
            blocked.discard(instruction.dst.name)
            return
        if isinstance(instruction, FpLoad):
            address, _ = self._effective_address(instruction.address, blocked=blocked)
            if address is None:
                blocked.add(instruction.dst.name)
                return
            value, latency = self._read_memory_value(
                address, 8, transient=transient, speculative=transient
            )
            self.fpu.write(instruction.dst.name, value)
            self.fpu.owner = self.context_id
            return
        if isinstance(instruction, FpExtract):
            if instruction.src.name in blocked:
                blocked.add(instruction.dst.name)
                return
            self.registers.write(instruction.dst.name, self.fpu.read(instruction.src.name))
            blocked.discard(instruction.dst.name)
            return
        if isinstance(instruction, (Nop, Fence, Halt)):
            return
        if isinstance(instruction, Load):
            # Only reached architecturally via _step; transient loads go
            # through _transient_load.
            raise AssertionError("loads must be handled by the stepping logic")
        raise NotImplementedError(f"unsupported instruction {instruction!r}")

    def _exec_alu(self, instruction: Alu, blocked: Set[str]) -> None:
        if instruction.dst.name in blocked:
            return
        source = self._source_value(instruction.src, blocked)
        if source is None:
            blocked.add(instruction.dst.name)
            return
        value = self.registers.read(instruction.dst.name)
        op = instruction.op
        if op == "add":
            result = value + source
        elif op == "sub":
            result = value - source
        elif op == "and":
            result = value & source
        elif op == "or":
            result = value | source
        elif op == "xor":
            result = value ^ source
        elif op == "shl":
            result = value << (source & 63)
        elif op == "shr":
            result = value >> (source & 63)
        elif op == "imul":
            result = value * source
        else:  # pragma: no cover - guarded by Alu.__post_init__
            raise NotImplementedError(op)
        slow = self.registers.is_slow(instruction.dst.name) or (
            isinstance(instruction.src, Register) and self.registers.is_slow(instruction.src.name)
        )
        self.registers.write(instruction.dst.name, result & MASK64, slow=slow)
        self.flags.lhs, self.flags.rhs = result & MASK64, 0
        blocked.discard(instruction.dst.name)
