"""Simulator-level defenses and their mapping to the paper's strategies.

Each member of :class:`SimDefense` changes the behaviour of the speculative
pipeline in :mod:`repro.uarch.pipeline` exactly the way the corresponding
real defense changes real hardware/software.  :data:`DEFENSE_STRATEGY` maps
every simulator defense onto one of the paper's four defense strategies,
mirroring the mapping of the modelled defenses in :mod:`repro.defenses`.
"""

from __future__ import annotations

import enum
from typing import Dict

from ..defenses.base import DefenseStrategy


class SimDefense(enum.Enum):
    """Defenses the microarchitectural simulator can enforce."""

    #: Strategy 1: transient loads do not execute until authorization resolves
    #: (context-sensitive fencing / inserted LFENCE at the micro-op level).
    PREVENT_SPECULATIVE_LOADS = "prevent speculative loads"
    #: Strategy 1 (Meltdown-specific): kernel pages are unmapped for user
    #: code, so even a transient access returns nothing (KAISER / KPTI).
    KERNEL_ISOLATION = "kernel page table isolation"
    #: Strategy 1 (Spectre v4): loads never speculatively bypass older stores
    #: with unresolved addresses (SSBB / SSBS).
    NO_STORE_BYPASS = "no speculative store bypass"
    #: Strategy 2: speculatively loaded data is not forwarded to dependent
    #: instructions (NDA / SpecShield / ConTExT / SpectreGuard).
    NO_SPECULATIVE_FORWARDING = "no speculative data forwarding"
    #: Strategy 3: speculative loads do not modify the cache; data is
    #: returned through a shadow buffer (InvisiSpec / SafeSpec).
    INVISIBLE_SPECULATION = "invisible speculation"
    #: Strategy 3: speculative cache fills are rolled back on a squash
    #: (CleanupSpec).
    CLEANUP_ON_SQUASH = "cleanup speculative cache state on squash"
    #: Strategy 3: speculative loads that hit may proceed, speculative misses
    #: are delayed until authorization (Conditional Speculation / Efficient
    #: Invisible Speculation).
    DELAY_SPECULATIVE_MISSES = "delay speculative cache misses"
    #: Strategy 3: the cache is partitioned between protection domains, so
    #: the receiver cannot observe the sender's fills (DAWG).
    PARTITIONED_CACHE = "partitioned cache (DAWG)"
    #: Strategy 4: predictor and BTB state is flushed on a context switch /
    #: barrier, so mis-training from another context has no effect
    #: (IBPB, predictor invalidation, disabling prediction).
    FLUSH_PREDICTORS = "flush predictors on context switch"


#: Mapping from simulator defenses to the paper's strategies.
DEFENSE_STRATEGY: Dict[SimDefense, DefenseStrategy] = {
    SimDefense.PREVENT_SPECULATIVE_LOADS: DefenseStrategy.PREVENT_ACCESS,
    SimDefense.KERNEL_ISOLATION: DefenseStrategy.PREVENT_ACCESS,
    SimDefense.NO_STORE_BYPASS: DefenseStrategy.PREVENT_ACCESS,
    SimDefense.NO_SPECULATIVE_FORWARDING: DefenseStrategy.PREVENT_USE,
    SimDefense.INVISIBLE_SPECULATION: DefenseStrategy.PREVENT_SEND,
    SimDefense.CLEANUP_ON_SQUASH: DefenseStrategy.PREVENT_SEND,
    SimDefense.DELAY_SPECULATIVE_MISSES: DefenseStrategy.PREVENT_SEND,
    SimDefense.PARTITIONED_CACHE: DefenseStrategy.PREVENT_SEND,
    SimDefense.FLUSH_PREDICTORS: DefenseStrategy.CLEAR_PREDICTIONS,
}
