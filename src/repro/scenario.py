"""Declarative scenario specs: every experiment is a point in one space.

The paper's experiments all live in one space -- attack x defense x timing
model x channel x secret -- and this module gives that space a declarative,
content-hashable surface:

* :class:`ScenarioSpec` -- a frozen description of **one** experiment point:
  a ``kind`` (``analyze`` / ``evaluate`` / ``simulate`` / ``matrix`` /
  ``simulate_sweep`` / ... see :data:`KINDS`) plus keyword parameters.
  Parameters are canonicalized (lists become tuples, ``None`` values are
  dropped, ordering is irrelevant) and the spec's :meth:`content_hash` is a
  SHA-256 over a *stable* rendering -- enums render by name, programs by
  their own content hash, frozen dataclasses field by field, callables by
  qualified name -- so the same spec hashes identically across processes
  and interpreter runs.  That hash is the key of the spec-level
  :class:`~repro.store.ArtifactStore` cache.
* :class:`ScenarioGrid` -- a cartesian (or explicit) *set* of points: shared
  ``base`` parameters plus named ``axes``, expanded in deterministic order
  by :meth:`ScenarioGrid.specs`.  :meth:`Engine.run_grid
  <repro.engine.Engine.run_grid>` fans a grid out over the execution plane;
  adding a new sweep axis is one ``axes`` entry, not one Engine method.

Specs built in Python may carry rich objects (a :class:`~repro.isa.program.
Program`, a customized :class:`~repro.defenses.base.Defense`, a
:class:`~repro.uarch.timing.scheduler.TimingModel`); specs loaded from JSON
(:func:`load`, ``repro run --spec``) carry plain names and field dicts, and
the ``decode_*`` helpers below turn either form into the library objects the
executors need.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import fields as dataclass_fields, is_dataclass
from itertools import product
from pathlib import Path
from types import MappingProxyType
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union


# ---------------------------------------------------------------------------
# The kind registry
# ---------------------------------------------------------------------------
class KindInfo:
    """Allowed/required parameters and arity of one spec kind."""

    __slots__ = ("name", "params", "required", "grid", "description")

    def __init__(
        self,
        name: str,
        params: Sequence[str],
        required: Sequence[str] = (),
        grid: bool = False,
        description: str = "",
    ) -> None:
        self.name = name
        self.params = frozenset(params)
        self.required = frozenset(required)
        self.grid = grid
        self.description = description


#: Every spec kind the engine can execute.  ``grid=True`` kinds are
#: composite (they sweep an internal grid and return one aggregate
#: envelope); the rest are single experiment points.
KINDS: Dict[str, KindInfo] = {
    kind.name: kind
    for kind in (
        KindInfo(
            "analyze",
            ("program", "name", "protected_symbols", "points"),
            required=("program",),
            description="Figure 9 attack-graph analysis of one program",
        ),
        KindInfo(
            "evaluate",
            ("defense", "attack"),
            required=("defense", "attack"),
            description="one defense applied to one attack variant",
        ),
        KindInfo(
            "exploit",
            ("exploit", "config", "secret", "defenses"),
            required=("exploit",),
            description="one end-to-end exploit on the functional simulator",
        ),
        KindInfo(
            "simulate",
            ("attack", "defenses", "config", "secret", "model"),
            required=("attack",),
            description="one attack on the cycle-accurate timing core",
        ),
        KindInfo(
            "patch",
            ("program", "name", "protected_symbols"),
            required=("program",),
            description="analyze + fence-insertion + re-analyze",
        ),
        KindInfo(
            "validate_timing",
            ("attacks", "model"),
            grid=True,
            description="Theorem-1 cross-check over the attack registry",
        ),
        KindInfo(
            "matrix",
            ("defenses", "attacks"),
            grid=True,
            description="the defense x attack evaluation matrix",
        ),
        KindInfo(
            "synthesize",
            ("sources", "delays", "channels"),
            grid=True,
            description="the Section V-A attack-space sweep",
        ),
        KindInfo(
            "exploit_suite",
            ("exploits", "config", "secret"),
            grid=True,
            description="a set of end-to-end exploits",
        ),
        KindInfo(
            "simulate_sweep",
            ("attacks", "defenses", "secret", "model"),
            grid=True,
            description="the (attack x defense) timing grid",
        ),
        KindInfo(
            "simulate_batch",
            ("points", "secret", "model"),
            required=("points",),
            grid=True,
            description="a list of timing points served via one warm session per worker",
        ),
        KindInfo(
            "window_ablation",
            ("attacks", "window_grid", "port_configs", "secret"),
            grid=True,
            description="the ROB/RS x port-config window-length ablation",
        ),
        KindInfo(
            "ablation",
            ("attack", "defenses", "secret", "config"),
            required=("attack",),
            grid=True,
            description="one exploit under each simulator defense in turn",
        ),
        KindInfo(
            "fuzz_point",
            ("seed", "index", "secret", "model", "inject", "sha"),
            required=("seed", "index"),
            description="one generated gadget through both leak oracles",
        ),
        KindInfo(
            "fuzz_campaign",
            ("seed", "count", "secret", "model", "inject", "budget"),
            required=("seed", "count"),
            grid=True,
            description="a seeded differential fuzzing campaign over both oracles",
        ),
    )
}


def _unknown_kind(kind: str) -> ValueError:
    return ValueError(
        f"unknown scenario kind {kind!r}; known: {', '.join(sorted(KINDS))}"
    )


#: Parameters that hold *sequences*.  A bare string here is almost always a
#: one-element axis the caller forgot to wrap (``attacks="spectre_v1"``);
#: without normalization the executors would iterate it character by
#: character and fail with a baffling per-letter error.
SEQUENCE_PARAMS = frozenset(
    {
        "attacks",
        "exploits",
        "defenses",
        "sources",
        "delays",
        "channels",
        "protected_symbols",
        "points",
        "window_grid",
        "port_configs",
    }
)


# ---------------------------------------------------------------------------
# Canonicalization and stable hashing
# ---------------------------------------------------------------------------
def _canonical(value: object) -> object:
    """Normalize a parameter value: sequences become tuples, dicts copies."""
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(item) for item in value)
    if isinstance(value, dict):
        return {key: _canonical(item) for key, item in value.items()}
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((_canonical(item) for item in value), key=stable_repr))
    return value


def stable_repr(value: object) -> str:
    """A process-independent rendering of a spec parameter value.

    ``repr`` alone is not stable: functions and bound builders render with
    memory addresses, enums with module paths that may move.  This walks the
    value and renders every leaf deterministically, so spec hashes agree
    between the CLI, a CI worker and a pool subprocess.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    # Programs are identified by their own content hash (name included).
    content_hash = getattr(value, "content_hash", None)
    if callable(content_hash) and hasattr(value, "listing"):
        return f"program:{content_hash()}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(stable_repr(item) for item in value) + "]"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(stable_repr(item) for item in value)) + "}"
    if isinstance(value, dict):
        items = sorted((str(key), stable_repr(item)) for key, item in value.items())
        return "{" + ",".join(f"{key}:{item}" for key, item in items) + "}"
    if is_dataclass(value) and not isinstance(value, type):
        rendered = ",".join(
            f"{field.name}={stable_repr(getattr(value, field.name))}"
            for field in dataclass_fields(value)
        )
        return f"{type(value).__name__}({rendered})"
    if callable(value):
        name = getattr(value, "__qualname__", getattr(value, "__name__", "anonymous"))
        return f"fn:{getattr(value, '__module__', '?')}.{name}"
    return repr(value)


def _jsonable(value: object) -> object:
    """A JSON-serializable rendering of a parameter value (for ``to_dict``)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return value.name
    content_hash = getattr(value, "content_hash", None)
    if callable(content_hash) and hasattr(value, "listing"):
        return {
            "__program__": getattr(value, "name", "program"),
            "sha256": content_hash(),
        }
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((_jsonable(item) for item in value), key=str)
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if is_dataclass(value) and not isinstance(value, type):
        rendered = {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclass_fields(value)
            if not callable(getattr(value, field.name))
        }
        key = getattr(value, "key", None)
        if key is not None:
            rendered = {"key": key}
        return {f"__{type(value).__name__}__": rendered}
    return stable_repr(value)


# ---------------------------------------------------------------------------
# ScenarioSpec
# ---------------------------------------------------------------------------
class ScenarioSpec:
    """One frozen, content-hashable experiment point.

    ``ScenarioSpec("simulate", attack="spectre_v1", secret=0x5A)`` -- the
    kind is validated against :data:`KINDS`, unknown parameters raise, and
    parameters whose value is ``None`` are dropped (so an explicit default
    and an omitted parameter are the same point).  Specs compare and hash by
    content, making them directly usable as cache keys.
    """

    __slots__ = ("kind", "_params", "_content_key", "_content_hash", "_hash")

    def __init__(self, kind: str, /, **params: object) -> None:
        info = KINDS.get(kind)
        if info is None:
            raise _unknown_kind(kind)
        unknown = set(params) - info.params
        if unknown:
            raise ValueError(
                f"unknown parameter(s) {', '.join(sorted(unknown))} for kind "
                f"{kind!r}; allowed: {', '.join(sorted(info.params))}"
            )
        cleaned = {
            key: _canonical(
                (value,) if key in SEQUENCE_PARAMS and isinstance(value, str)
                else value
            )
            for key, value in params.items()
            if value is not None
        }
        missing = info.required - set(cleaned)
        if missing:
            raise ValueError(
                f"kind {kind!r} requires parameter(s): {', '.join(sorted(missing))}"
            )
        object.__setattr__(self, "kind", kind)
        object.__setattr__(
            self, "_params", MappingProxyType(dict(sorted(cleaned.items())))
        )
        object.__setattr__(self, "_content_key", None)
        object.__setattr__(self, "_content_hash", None)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ScenarioSpec is immutable")

    def __reduce__(self):
        # MappingProxyType does not pickle; rebuild from the plain params so
        # specs can ship to pool workers for sharded grid execution.
        return (_rebuild_spec, (self.kind, dict(self._params)))

    # -- parameters ----------------------------------------------------
    @property
    def params(self) -> Mapping[str, object]:
        return self._params

    def get(self, name: str, default: object = None) -> object:
        return self._params.get(name, default)

    def replace(self, **params: object) -> "ScenarioSpec":
        """A new spec with the given parameters overridden (``None`` drops)."""
        merged = dict(self._params)
        merged.update(params)
        return ScenarioSpec(self.kind, **merged)

    @property
    def is_grid(self) -> bool:
        """Composite kinds sweep an internal grid and aggregate one envelope."""
        return KINDS[self.kind].grid

    # -- identity ------------------------------------------------------
    def content_key(self) -> str:
        """The canonical rendering the content hash is computed over."""
        if self._content_key is None:
            rendered = ";".join(
                f"{name}={stable_repr(value)}" for name, value in self._params.items()
            )
            object.__setattr__(self, "_content_key", f"{self.kind}({rendered})")
        return self._content_key

    def content_hash(self) -> str:
        """SHA-256 of the content key: the spec's artifact-store cache key.

        Cached after the first call -- the checkpointing grid pipeline asks
        for it once per warm-store probe, once per miss execution, and once
        per fault-plan match, for every point of a campaign.
        """
        if self._content_hash is None:
            digest = hashlib.sha256(self.content_key().encode("utf-8")).hexdigest()
            object.__setattr__(self, "_content_hash", digest)
        return self._content_hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScenarioSpec):
            return NotImplemented
        return self.content_key() == other.content_key()

    def __hash__(self) -> int:
        if self._hash is None:
            object.__setattr__(self, "_hash", hash(self.content_key()))
        return self._hash

    def __repr__(self) -> str:
        rendered = ", ".join(f"{k}={v!r}" for k, v in self._params.items())
        return f"ScenarioSpec({self.kind!r}, {rendered})" if rendered else (
            f"ScenarioSpec({self.kind!r})"
        )

    def describe(self) -> str:
        """A short human-readable subject line for envelopes and logs."""
        for name in ("attack", "exploit", "program", "defense"):
            value = self._params.get(name)
            if value is not None:
                label = getattr(value, "name", None) or getattr(value, "key", None)
                return f"{self.kind}:{label if label is not None else value}"
        return self.kind

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "params": {name: _jsonable(value) for name, value in self._params.items()},
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ScenarioSpec":
        kind = payload.get("kind")
        if not isinstance(kind, str):
            raise ValueError("spec dict needs a string 'kind'")
        params = payload.get("params") or {}
        if not isinstance(params, Mapping):
            raise ValueError("spec 'params' must be a mapping")
        return cls(kind, **dict(params))

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))


def _rebuild_spec(kind: str, params: Dict[str, object]) -> "ScenarioSpec":
    return ScenarioSpec(kind, **params)


# ---------------------------------------------------------------------------
# ScenarioGrid
# ---------------------------------------------------------------------------
class ScenarioGrid:
    """A declarative set of experiment points: shared base + named axes.

    ``ScenarioGrid("simulate", base={"secret": 0x5A}, axes={"attack":
    ["spectre_v1", "meltdown"], "defenses": [(), ("PREVENT_SPECULATIVE_LOADS",)]})``
    expands to the cartesian product in deterministic order (axes in
    insertion order, values in the given order).  An axis value of ``None``
    means "parameter absent" for that point -- the natural encoding of an
    undefended baseline.  :meth:`explicit` wraps a hand-built spec list
    instead.
    """

    __slots__ = ("kind", "base", "axes", "_explicit")

    def __init__(
        self,
        kind: str,
        base: Optional[Mapping[str, object]] = None,
        axes: Optional[Mapping[str, Sequence[object]]] = None,
    ) -> None:
        if kind not in KINDS:
            raise _unknown_kind(kind)
        self.kind = kind
        self.base = dict(base or {})
        self.axes = {name: list(values) for name, values in (axes or {}).items()}
        self._explicit: Optional[List[ScenarioSpec]] = None
        allowed = KINDS[kind].params
        unknown = (set(self.base) | set(self.axes)) - allowed
        if unknown:
            raise ValueError(
                f"unknown parameter(s) {', '.join(sorted(unknown))} for kind "
                f"{kind!r}; allowed: {', '.join(sorted(allowed))}"
            )
        overlap = set(self.base) & set(self.axes)
        if overlap:
            raise ValueError(
                f"parameter(s) {', '.join(sorted(overlap))} appear in both "
                "base and axes"
            )
        for name, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {name!r} has no values")

    @classmethod
    def explicit(cls, specs: Sequence[ScenarioSpec]) -> "ScenarioGrid":
        """A grid over a hand-built list of points (all of one kind)."""
        specs = list(specs)
        if not specs:
            raise ValueError("explicit grid needs at least one spec")
        kinds = {spec.kind for spec in specs}
        if len(kinds) != 1:
            raise ValueError(
                f"explicit grid mixes kinds: {', '.join(sorted(kinds))}"
            )
        grid = cls(specs[0].kind)
        grid._explicit = specs
        return grid

    # -- expansion -----------------------------------------------------
    def specs(self) -> List[ScenarioSpec]:
        """Every point of the grid, in deterministic expansion order."""
        if self._explicit is not None:
            return list(self._explicit)
        names = list(self.axes)
        combos = product(*(self.axes[name] for name in names))
        return [
            ScenarioSpec(self.kind, **{**self.base, **dict(zip(names, combo))})
            for combo in combos
        ]

    def __len__(self) -> int:
        if self._explicit is not None:
            return len(self._explicit)
        count = 1
        for values in self.axes.values():
            count *= len(values)
        return count

    def __iter__(self) -> Iterable[ScenarioSpec]:
        return iter(self.specs())

    # -- identity ------------------------------------------------------
    def content_key(self) -> str:
        if self._explicit is not None:
            rendered = ",".join(spec.content_key() for spec in self._explicit)
            return f"grid:{self.kind}[{rendered}]"
        base = ";".join(
            f"{name}={stable_repr(value)}"
            for name, value in sorted(self.base.items())
        )
        axes = ";".join(
            f"{name}=[{','.join(stable_repr(v) for v in values)}]"
            for name, values in self.axes.items()
        )
        return f"grid:{self.kind}({base})x({axes})"

    def content_hash(self) -> str:
        return hashlib.sha256(self.content_key().encode("utf-8")).hexdigest()

    def __repr__(self) -> str:
        if self._explicit is not None:
            return f"ScenarioGrid.explicit({len(self._explicit)} x {self.kind!r})"
        axes = ", ".join(f"{name}[{len(values)}]" for name, values in self.axes.items())
        return f"ScenarioGrid({self.kind!r}, axes: {axes or '-'})"

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        if self._explicit is not None:
            return {
                "kind": self.kind,
                "specs": [spec.to_dict() for spec in self._explicit],
            }
        return {
            "kind": self.kind,
            "base": {name: _jsonable(value) for name, value in self.base.items()},
            "axes": {
                name: [_jsonable(value) for value in values]
                for name, values in self.axes.items()
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ScenarioGrid":
        kind = payload.get("kind")
        if not isinstance(kind, str):
            raise ValueError("grid dict needs a string 'kind'")
        if "specs" in payload:
            return cls.explicit(
                [ScenarioSpec.from_dict(item) for item in payload["specs"]]
            )
        return cls(kind, payload.get("base"), payload.get("axes"))


# ---------------------------------------------------------------------------
# Loading declarative specs from disk (the ``repro run --spec`` path)
# ---------------------------------------------------------------------------
def resolve_program_params(params: Dict[str, object], anchor: Path) -> None:
    """Inline a ``program_path`` reference so the spec hashes file *content*.

    A path-keyed cache entry would serve stale results after the file is
    edited; reading the source at load time makes the content hash cover
    what will actually be analyzed.  Relative paths resolve against
    ``anchor`` (the spec file's directory, or the CLI's working directory).
    """
    path_value = params.pop("program_path", None)
    if path_value is None:
        return
    source = Path(path_value)
    if not source.is_absolute():
        source = anchor / source
    params.setdefault("name", str(path_value))
    params["program"] = source.read_text(encoding="utf-8")


def load(path: Union[str, Path]) -> Union[ScenarioSpec, ScenarioGrid]:
    """Load a spec or grid from a JSON file.

    A dict with ``axes`` or ``specs`` is a :class:`ScenarioGrid`; anything
    else is a single :class:`ScenarioSpec`.  ``program_path`` parameters --
    in a spec's ``params``, a grid's ``base``, or each entry of an explicit
    ``specs`` list -- are resolved relative to the spec file and inlined as
    program source.
    """
    spec_path = Path(path)
    payload = json.loads(spec_path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: spec file must hold a JSON object")
    anchor = spec_path.resolve().parent
    if "axes" in payload or "specs" in payload:
        if "specs" in payload:
            points = []
            for item in payload["specs"]:
                item_params = dict(item.get("params") or {})
                resolve_program_params(item_params, anchor)
                points.append({**item, "params": item_params})
            payload = {**payload, "specs": points}
        else:
            base = dict(payload.get("base") or {})
            resolve_program_params(base, anchor)
            payload = {**payload, "base": base}
        return ScenarioGrid.from_dict(payload)
    params = dict(payload.get("params") or {})
    resolve_program_params(params, anchor)
    return ScenarioSpec.from_dict({**payload, "params": params})


# ---------------------------------------------------------------------------
# Decoders: declarative (name / dict) values -> library objects
# ---------------------------------------------------------------------------
def decode_program(value: object, name: Optional[str] = None):
    """A :class:`Program` from either a Program or assembly source text."""
    if isinstance(value, str):
        from .isa.assembler import assemble

        return assemble(value, name=name or "program")
    if hasattr(value, "content_hash") and hasattr(value, "listing"):
        return value
    raise TypeError(
        "program parameter must be a Program or assembly source text, "
        f"not {type(value).__name__}"
    )


def decode_defense(value: object):
    """A :class:`Defense` from either a Defense or a catalog key."""
    if isinstance(value, str):
        from .defenses import get as get_defense

        return get_defense(value)
    return value


def decode_attack_variant(value: object):
    """An :class:`AttackVariant` from either a variant or a registry key."""
    if isinstance(value, str):
        from .attacks import get as get_attack

        return get_attack(value)
    return value


def decode_sim_defense(value: object):
    """A :class:`SimDefense` from either the enum or its name."""
    from .uarch.defenses import SimDefense

    if isinstance(value, SimDefense):
        return value
    if isinstance(value, str):
        try:
            return SimDefense[value.upper()]
        except KeyError:
            known = ", ".join(defense.name.lower() for defense in SimDefense)
            raise ValueError(f"unknown simulator defense {value!r}; known: {known}")
    raise TypeError(f"cannot decode simulator defense from {type(value).__name__}")


def decode_sim_defenses(values: Optional[Sequence[object]]) -> Tuple[object, ...]:
    """A tuple of :class:`SimDefense` (``None`` -> empty)."""
    if values is None:
        return ()
    return tuple(decode_sim_defense(value) for value in values)


#: Named timing-model presets accepted wherever a model parameter appears.
MODEL_PRESETS = ("default", "contended", "serialized")


def decode_model(value: object):
    """A :class:`TimingModel` from a model, a preset name, or a field dict.

    Returns ``None`` for ``None`` (callers fall back to the default model),
    so an absent parameter and the default model are the same cache key.
    """
    if value is None:
        return None
    from .uarch.timing.scheduler import (
        CONTENDED_MODEL,
        DEFAULT_MODEL,
        SERIALIZED_MODEL,
        TimingModel,
    )

    if isinstance(value, TimingModel):
        return value
    if isinstance(value, str):
        presets = {
            "default": DEFAULT_MODEL,
            "contended": CONTENDED_MODEL,
            "serialized": SERIALIZED_MODEL,
        }
        try:
            return presets[value]
        except KeyError:
            raise ValueError(
                f"unknown timing model {value!r}; known presets: "
                f"{', '.join(MODEL_PRESETS)}"
            )
    if isinstance(value, Mapping):
        return TimingModel(**dict(value))
    raise TypeError(f"cannot decode timing model from {type(value).__name__}")


def decode_config(value: object):
    """A :class:`UarchConfig` from a config or a field dict (defenses by name)."""
    if value is None:
        return None
    from .uarch.config import UarchConfig

    if isinstance(value, UarchConfig):
        return value
    if isinstance(value, Mapping):
        fields = dict(value)
        defenses = fields.pop("defenses", ())
        config = UarchConfig(**fields)
        if defenses:
            config = config.with_defenses(*decode_sim_defenses(defenses))
        return config
    raise TypeError(f"cannot decode uarch config from {type(value).__name__}")


def _decode_enum(enum_cls, value: object):
    if isinstance(value, enum_cls):
        return value
    if isinstance(value, str):
        try:
            return enum_cls[value.upper()]
        except KeyError:
            known = ", ".join(member.name.lower() for member in enum_cls)
            raise ValueError(
                f"unknown {enum_cls.__name__} {value!r}; known: {known}"
            )
    raise TypeError(f"cannot decode {enum_cls.__name__} from {type(value).__name__}")


def decode_axis_enums(enum_cls, values: Optional[Sequence[object]]):
    """A list of enum members (or ``None`` passthrough) from names/members."""
    if values is None:
        return None
    return [_decode_enum(enum_cls, value) for value in values]


def decode_points(values: Optional[Sequence[object]]):
    """Protection points from enum members or names (``None`` passthrough)."""
    if values is None:
        return None
    from .core.security_dependency import ProtectionPoint

    decoded = []
    for value in values:
        if isinstance(value, ProtectionPoint):
            decoded.append(value)
        elif isinstance(value, str):
            try:
                decoded.append(ProtectionPoint(value))
            except ValueError:
                decoded.append(ProtectionPoint[value.upper()])
        else:
            raise TypeError(
                f"cannot decode protection point from {type(value).__name__}"
            )
    return decoded


def decode_secret(value: object) -> Optional[int]:
    """An int secret from an int or a string literal (``"0x5a"``)."""
    if value is None or isinstance(value, int):
        return value
    if isinstance(value, str):
        return int(value, 0)
    raise TypeError(f"cannot decode secret from {type(value).__name__}")
