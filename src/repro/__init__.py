"""repro -- attack-graph models for speculative execution attacks.

A reproduction of *"New Models for Understanding and Reasoning about
Speculative Execution Attacks"* (He, Hu, Lee -- HPCA 2021) as a Python
library:

* :mod:`repro.core` -- Topological Sort Graphs, race conditions (Theorem 1),
  security dependencies, and typed attack graphs.
* :mod:`repro.attacks` -- attack graphs for every published variant
  (Tables I and III; Figures 1, 3-7) and the Section V-A attack-space
  generator.
* :mod:`repro.defenses` -- the four defense strategies, the industry and
  academic defense catalog (Table II), and defense evaluation.
* :mod:`repro.isa` / :mod:`repro.graphtool` -- a tiny assembly-like ISA and
  the Section V-C tool that constructs attack graphs from programs, finds
  missing security dependencies, and patches them.
* :mod:`repro.uarch` / :mod:`repro.channels` / :mod:`repro.exploits` -- an
  out-of-order speculative pipeline simulator, cache covert channels, and
  end-to-end Spectre/Meltdown exploits that actually leak (and are actually
  stopped by the modelled defenses).
* :mod:`repro.analysis` -- regeneration of the paper's tables and graph
  rendering.
"""

from . import analysis, attacks, channels, core, defenses, exploits, graphtool, isa, uarch
from .engine import Engine, Result, default_engine, set_default_engine
from .scenario import ScenarioGrid, ScenarioSpec
from .store import ArtifactStore, DiskStore, MemoryStore
from .core import (
    AttackGraph,
    AttackStep,
    Dependency,
    DependencyKind,
    Operation,
    OperationType,
    ProtectionPoint,
    Race,
    SecurityDependency,
    TopologicalSortGraph,
    find_races,
    has_race,
    missing_security_dependencies,
    verify_theorem1,
)
from .defenses import DefenseStrategy, attack_succeeds, evaluate_defense

__version__ = "1.0.0"


def build_info() -> str:
    """``repro <version> (<short-commit>)`` -- identifies a deployment.

    The commit hash comes from the git checkout the package runs from;
    outside a checkout (an installed wheel, a bare copy) it is omitted.
    """
    import os
    import subprocess

    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip()
    except Exception:
        commit = ""
    return f"repro {__version__} ({commit})" if commit else f"repro {__version__}"

__all__ = [
    "AttackGraph",
    "AttackStep",
    "Dependency",
    "DependencyKind",
    "DefenseStrategy",
    "Engine",
    "Operation",
    "OperationType",
    "ProtectionPoint",
    "Race",
    "Result",
    "SecurityDependency",
    "ArtifactStore",
    "DiskStore",
    "MemoryStore",
    "ScenarioGrid",
    "ScenarioSpec",
    "TopologicalSortGraph",
    "analysis",
    "attacks",
    "attack_succeeds",
    "build_info",
    "channels",
    "core",
    "default_engine",
    "defenses",
    "evaluate_defense",
    "exploits",
    "graphtool",
    "isa",
    "uarch",
    "find_races",
    "has_race",
    "missing_security_dependencies",
    "set_default_engine",
    "verify_theorem1",
    "__version__",
]
