#!/usr/bin/env python
"""Run the TSG-core perf suite and append the results to BENCH_core.json.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/run_perf.py [--output BENCH_core.json] [--quick]

Also available as the ``repro perf`` CLI subcommand.  Each invocation appends
one commit-stamped run to the trajectory file so regressions across PRs are
visible as a time series.
"""

from __future__ import annotations

import argparse
import os
import sys

try:
    from repro import perf
except ImportError:  # pragma: no cover - direct invocation without PYTHONPATH
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )
    from repro import perf


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", "-o", default="BENCH_core.json", help="trajectory file to append to"
    )
    budget = parser.add_mutually_exclusive_group()
    budget.add_argument(
        "--quick", action="store_true", help="smaller baseline budget, single repeat"
    )
    budget.add_argument(
        "--full",
        action="store_true",
        help="run the full 500-instruction rescan baseline (default: 200)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="do not benchmark; check the recorded trajectory against the "
        "ROADMAP regression thresholds and exit non-zero on failure",
    )
    parser.add_argument(
        "--allow-stale",
        action="store_true",
        help="with --check: tolerate a latest record whose commit differs "
        "from HEAD (still warns)",
    )
    args = parser.parse_args(argv)
    if args.check:
        return perf.run_check(args.output, allow_stale=args.allow_stale)
    run = perf.main(output=args.output, quick=args.quick, full=args.full)
    print(f"commit {run['commit']}  ({run['timestamp']})")
    for record in run["results"]:
        print(
            f"  {record['graph']:>14}: {record['vertices']} vertices / "
            f"{record['edges']} edges, {record['racing_pairs']} racing pairs | "
            f"all-pairs races: closure {record['closure_all_pairs_seconds'] * 1e3:.2f} ms "
            f"vs BFS {record['bfs_all_pairs_seconds_estimate'] * 1e3:.1f} ms "
            f"({record['bfs_baseline_mode']}) -> {record['speedup_all_pairs']:.0f}x | "
            f"ordering count ({record['count_orderings_digits']} digits) "
            f"in {record['count_orderings_seconds'] * 1e3:.2f} ms"
        )
    for line in perf.format_engine_records(run):
        print(f"  {line}")
    print(f"appended to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
