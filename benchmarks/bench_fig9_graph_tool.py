"""E12 -- Figure 9: the attack-graph construction tool on Listings 1 and 2."""

from __future__ import annotations

import pytest

from repro.graphtool import analyze_program, patch_program
from repro.isa import assemble

LISTING1 = """
.data
probe_array:  address=0x1000000 size=1048576 shared
victim_array: address=0x200000  size=16
victim_size:  address=0x210000  size=8
secret:       address=0x200048  size=1 protected
.text
    clflush [probe_array]
    mov rdx, 0x48
    cmp rdx, [victim_size]
    ja done
    mov rax, byte [victim_array + rdx]
    shl rax, 12
    mov rbx, [probe_array + rax]
done:
    hlt
"""

LISTING2 = """
.data
probe_array:   address=0x1000000  size=1048576 shared
kernel_secret: address=0xffff0000 size=64 kernel protected
.text
    clflush [probe_array]
    mov rax, byte [kernel_secret]
    shl rax, 12
    mov rbx, [probe_array + rax]
    hlt
"""


@pytest.mark.experiment("E12")
def test_figure9_listing1_analysis(benchmark):
    program = assemble(LISTING1, name="listing1")
    report = benchmark(lambda: analyze_program(program))
    print("\n" + report.summary())
    assert report.vulnerable
    assert not report.is_meltdown_type  # left branch of Figure 9
    assert report.access_findings and report.send_findings
    assert all(finding.software_patchable for finding in report.findings)


@pytest.mark.experiment("E12")
def test_figure9_listing2_analysis(benchmark):
    program = assemble(LISTING2, name="listing2")
    report = benchmark(lambda: analyze_program(program))
    print("\n" + report.summary())
    assert report.vulnerable
    assert report.is_meltdown_type  # right branch of Figure 9: micro-op modelling
    assert all(not finding.software_patchable for finding in report.findings)


@pytest.mark.experiment("E12")
def test_figure9_patching_listing1(benchmark):
    program = assemble(LISTING1, name="listing1")
    result = benchmark(lambda: patch_program(program))
    print("\n" + result.summary())
    assert result.fences_inserted
    assert result.report_before.vulnerable
    assert not result.report_after.vulnerable


@pytest.mark.experiment("E12")
def test_figure9_safe_program_is_not_flagged(benchmark):
    safe = assemble(
        ".data\npublic: address=0x1000 size=8\n.text\nmov rax, [public]\nadd rax, 1\nhlt",
        name="safe",
    )
    report = benchmark(lambda: analyze_program(safe))
    assert not report.vulnerable
