"""E7 -- Figure 4: the unified faulting-load graph, its five secret sources,
the four defense placements, and the insufficient-defense analysis."""

from __future__ import annotations

import pytest

from repro.attacks import FAULTING_LOAD_SOURCES, Nodes, build_faulting_load_graph, get
from repro.defenses import (
    apply_clear_predictions,
    apply_prevent_access,
    apply_prevent_send,
    apply_prevent_use,
    attack_succeeds,
    insufficient_defense_demo,
    leaking_sources,
)


@pytest.mark.experiment("E7")
def test_figure4_five_secret_sources(benchmark):
    graph = benchmark(
        lambda: build_faulting_load_graph(name="figure4", sources=FAULTING_LOAD_SOURCES)
    )
    assert len(graph.secret_access_nodes) == 5
    sources = leaking_sources(graph)
    print(f"\nFigure 4 leaking sources: {[s[0] for s in sources]}")
    assert len(sources) == 5  # every source is an independent leak path


@pytest.mark.experiment("E7")
def test_figure4_mds_variants_map_to_their_buffers(benchmark):
    def build():
        return {key: get(key).build_graph() for key in ("ridl", "zombieload", "fallout", "taa", "cacheout")}

    graphs = benchmark(build)
    assert Nodes.read_from("store buffer") in graphs["fallout"]
    assert Nodes.read_from("line fill buffer") in graphs["zombieload"]
    assert Nodes.read_from("load port") in graphs["ridl"]
    for graph in graphs.values():
        assert graph.is_vulnerable()


@pytest.mark.experiment("E7")
def test_figure4_defense_placements(benchmark):
    """The four red-dashed placements of Figure 4: strategies 1-3 defeat the
    attack; clearing predictions does not apply to faulting loads."""
    graph = build_faulting_load_graph(name="figure4", sources=FAULTING_LOAD_SOURCES)

    def evaluate_placements():
        return {
            "prevent_access": attack_succeeds(apply_prevent_access(graph)),
            "prevent_use": attack_succeeds(apply_prevent_use(graph)),
            "prevent_send": attack_succeeds(apply_prevent_send(graph)),
            "clear_predictions": attack_succeeds(apply_clear_predictions(graph)),
        }

    outcomes = benchmark(evaluate_placements)
    print(f"\nFigure 4 defense placements (True = still leaks): {outcomes}")
    assert not outcomes["prevent_access"]
    assert not outcomes["prevent_use"]
    assert not outcomes["prevent_send"]
    assert outcomes["clear_predictions"]  # no mis-training to clear


@pytest.mark.experiment("E7")
def test_figure4_insufficient_defense(benchmark):
    """Section V-B: a fence only on the memory path is insufficient when the
    secret can also be read from the L1 cache."""
    report = benchmark(insufficient_defense_demo)
    print(
        "\nInsufficient defense demo: baseline leaks={0}, memory-only fence leaks={1}, "
        "all-source fence leaks={2}, prevent-use leaks={3}".format(
            report.baseline_leaks,
            report.fenced_memory_only_leaks,
            report.fenced_all_sources_leaks,
            report.prevent_use_leaks,
        )
    )
    assert report.reproduces_paper
