"""E9 -- Figure 6: the memory-disambiguation (Spectre v4) attack graph."""

from __future__ import annotations

import pytest

from repro.attacks import Nodes, get
from repro.core import has_race
from repro.defenses import apply_prevent_access, attack_succeeds, evaluate_defense
from repro.defenses import get as get_defense
from repro.exploits import run_spectre_v4
from repro.uarch import SimDefense, UarchConfig


@pytest.mark.experiment("E9")
def test_figure6_graph(benchmark):
    graph = benchmark(lambda: get("spectre_v4").build_graph())
    assert graph.operation(Nodes.DISAMBIGUATION).op_type.value == "authorization"
    assert has_race(graph, Nodes.AUTH_RESOLVED, Nodes.READ_S)
    assert has_race(graph, Nodes.AUTH_RESOLVED, Nodes.LOAD_R)
    # The missing dependency the paper draws as a red dashed arrow.
    assert not attack_succeeds(apply_prevent_access(graph))


@pytest.mark.experiment("E9")
def test_figure6_ssbb_defense_in_the_model(benchmark):
    evaluation = benchmark(
        lambda: evaluate_defense(get_defense("ssbb"), get("spectre_v4"))
    )
    print(f"\n{evaluation}")
    assert evaluation.effective


@pytest.mark.experiment("E9")
def test_figure6_simulated_store_bypass(benchmark):
    def run_pair():
        leak = run_spectre_v4()
        defended = run_spectre_v4(UarchConfig().with_defenses(SimDefense.NO_STORE_BYPASS))
        return leak, defended

    leak, defended = benchmark(run_pair)
    print(f"\n{leak}\nwith SSBB: {defended}")
    assert leak.success and not defended.success
    assert leak.stats.store_bypasses >= 1
    assert defended.stats.store_bypasses == 0
