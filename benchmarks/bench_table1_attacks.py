"""E1 -- Table I: speculative attacks, their CVEs and impacts."""

from __future__ import annotations

import pytest

from repro.analysis import table1
from repro.attacks import registry


@pytest.mark.experiment("E1")
def test_table1_regeneration(benchmark):
    rows = benchmark(registry.table1_rows)
    assert len(rows) == 13
    names = [row[0] for row in rows]
    assert names[0] == "Spectre v1"
    assert "Meltdown (Spectre v3)" in names
    assert "Spoiler" in names
    cves = {row[0]: row[1] for row in rows}
    assert cves["Spectre v1"] == "CVE-2017-5753"
    assert cves["Meltdown (Spectre v3)"] == "CVE-2017-5754"
    assert cves["Foreshadow (L1 Terminal Fault)"] == "CVE-2018-3615"


@pytest.mark.experiment("E1")
def test_table1_rendering(benchmark):
    text = benchmark(table1)
    print("\n" + text)
    assert len(text.splitlines()) == 15  # header + separator + 13 rows
    assert "Boundary check bypass" in text
    assert "Virtual-to-physical" in text


@pytest.mark.experiment("E1")
def test_table1_attack_graphs_all_build(benchmark):
    graphs = benchmark(registry.build_all_graphs)
    assert len(graphs) == 19
    assert all(graph.is_vulnerable() for graph in graphs.values())
