"""Ablation A3 -- predictor mis-training (attack step 1b).

The Spectre v1 attack graph has a setup vertex "Mistrain predictor"; without
it the speculative path is not attacker-controlled.  On the simulator a
branch with no predictor history does not speculate at all, so zero training
rounds means no leak -- and flushing the predictor after training (defense
strategy 4) has exactly the same effect.
"""

from __future__ import annotations

import pytest

from repro.exploits import run_spectre_v1, run_spectre_v2
from repro.uarch import SimDefense, UarchConfig


@pytest.mark.experiment("A3")
def test_spectre_v1_requires_training(benchmark):
    def sweep_training():
        return {
            rounds: run_spectre_v1(training_rounds=rounds).success
            for rounds in (0, 1, 2, 4, 8)
        }

    outcomes = benchmark(sweep_training)
    print("\nSpectre v1 leak vs branch-predictor training rounds:")
    for rounds, leaked in outcomes.items():
        print(f"  training rounds={rounds}: {'LEAKS' if leaked else 'no leak'}")
    assert not outcomes[0]
    assert outcomes[1] and outcomes[4] and outcomes[8]


@pytest.mark.experiment("A3")
def test_training_is_undone_by_predictor_flush(benchmark):
    def run_pair():
        trained = run_spectre_v1(training_rounds=4)
        flushed = run_spectre_v1(
            UarchConfig().with_defenses(SimDefense.FLUSH_PREDICTORS), training_rounds=4
        )
        poisoned_btb = run_spectre_v2()
        flushed_btb = run_spectre_v2(UarchConfig().with_defenses(SimDefense.FLUSH_PREDICTORS))
        return trained.success, flushed.success, poisoned_btb.success, flushed_btb.success

    trained, flushed, poisoned_btb, flushed_btb = benchmark(run_pair)
    print(
        f"\ntrained={trained}, trained+flush={flushed}, "
        f"poisoned BTB={poisoned_btb}, poisoned BTB+flush={flushed_btb}"
    )
    assert trained and not flushed
    assert poisoned_btb and not flushed_btb
