"""E18 -- Declarative scenario specs + the disk-persistent artifact store.

Asserts the acceptance properties of the ScenarioSpec/ArtifactStore
redesign: a spec re-run in a *fresh* session is served from the disk store
at least 5x faster than the cold computation with byte-identical rows, and
legacy Engine methods route through the same ``run`` spine.
"""

from __future__ import annotations

import time

import pytest

from repro.engine import Engine
from repro.scenario import ScenarioGrid, ScenarioSpec
from repro.store import DiskStore


def _min_time(fn, repeats: int = 5):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.experiment("E18")
def test_disk_warm_run_is_5x_over_cold(tmp_path, benchmark):
    """The acceptance bar: warm disk hit >= 5x over the cold spec run."""
    spec = ScenarioSpec(
        "simulate_sweep",
        attacks=("spectre_v1", "meltdown"),
        defenses=(None, "PREVENT_SPECULATIVE_LOADS"),
    )
    with Engine(store=DiskStore(root=tmp_path, version="bench")) as engine:
        cold_seconds, cold = _min_time(lambda: engine.run(spec), repeats=1)

    def warm_run():
        with Engine(store=DiskStore(root=tmp_path, version="bench")) as fresh:
            return fresh.run(spec)

    warm = benchmark(warm_run)
    warm_seconds, _ = _min_time(warm_run)
    speedup = cold_seconds / warm_seconds
    print(f"\ndisk store: cold {cold_seconds * 1e3:.1f} ms vs fresh-session "
          f"warm {warm_seconds * 1e3:.2f} ms -> {speedup:.0f}x")
    assert warm.cache == "warm"
    assert warm.data == cold.data  # byte-identical rows
    assert speedup >= 5.0


@pytest.mark.experiment("E18")
def test_grid_points_share_the_store_across_sessions(tmp_path, benchmark):
    """Every grid point persists individually: overlapping grids reuse them."""
    first = ScenarioGrid("simulate", axes={"attack": ["spectre_v1", "meltdown"]})
    overlap = ScenarioGrid(
        "simulate", axes={"attack": ["spectre_v1", "meltdown", "foreshadow"]}
    )
    with Engine(store=DiskStore(root=tmp_path, version="bench")) as engine:
        engine.run_grid(first)

    def overlapping_run():
        with Engine(store=DiskStore(root=tmp_path, version="bench")) as fresh:
            return fresh, fresh.run_grid(overlap)

    fresh, result = benchmark(overlapping_run)
    assert result.data["points"] == 3
    # The two shared points were warm disk hits, only foreshadow computed.
    assert fresh.stats()["store"]["hits"] >= 2


@pytest.mark.experiment("E18")
def test_legacy_methods_route_through_the_spec_spine(benchmark):
    """Cache-stats acceptance: named methods are spec executions."""
    def legacy_calls():
        with Engine() as engine:
            engine.simulate("spectre_v1")
            engine.simulate_sweep(attacks=["spectre_v1"], defenses=[None])
            engine.ablation("spectre_v1", defenses=[])
            return engine.stats()["runs"]

    runs = benchmark(legacy_calls)
    assert runs["simulate"] >= 2  # direct + the sweep's row
    assert runs["simulate_sweep"] == 1
    assert runs["ablation"] == 1 and runs["exploit"] >= 1
