"""E20 -- The analysis service under concurrent load: dedup + latency.

Asserts the acceptance properties of the service subsystem: with N
concurrent clients submitting an overlapping spec set, single-flight dedup
plus the shared DiskStore make the observed compute count equal the number
of *unique* specs (the dedup hit-rate clears the ``repro perf --check``
floor), no request is dropped, and the in-process single-flight path
computes an identical spec exactly once for any number of waiters.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.engine import Engine
from repro.perf import THRESHOLDS, measure_service_throughput
from repro.scenario import ScenarioSpec
from repro.service.server import AnalysisService, ServiceConfig
from repro.store import MemoryStore


@pytest.mark.experiment("E20")
def test_concurrent_load_deduplicates_to_unique_specs(benchmark):
    """The acceptance bar: computed == unique, hit-rate over the floor."""
    record = benchmark(
        lambda: measure_service_throughput(clients=4, per_client=6, overlap=0.5)
    )
    print(
        f"\nservice load ({record['clients']} clients, "
        f"{record['requests']} requests, {record['unique_specs']} unique): "
        f"{record['computed']} computed, hit-rate {record['dedup_hit_rate']:.1%}, "
        f"{record['requests_per_second']:.0f} req/s, "
        f"p50 {record['p50_ms']:.1f} ms / p99 {record['p99_ms']:.1f} ms"
    )
    assert record["perfect_dedup"]
    assert record["completed"] == record["requests"]
    assert record["dedup_hit_rate"] >= THRESHOLDS["service_dedup_hit_rate_min"]


@pytest.mark.experiment("E20")
def test_single_flight_computes_once_for_any_fanout(benchmark):
    """Twelve waiters on one spec: one compute, twelve identical envelopes."""

    async def fanout():
        engine = Engine(store=MemoryStore())
        service = AnalysisService(engine, ServiceConfig(batch_window=0.001))
        await service.start(listen=False)
        spec = ScenarioSpec("exploit", exploit="spectre_v1", secret=0x5A)
        envelopes = await asyncio.gather(
            *(service.request(spec) for _ in range(12))
        )
        await service.drain()
        return engine.stats()["runs"], envelopes

    runs, envelopes = benchmark(lambda: asyncio.run(fanout()))
    assert runs.get("exploit") == 1
    assert len({str(sorted(e["result"]["data"].items())) for e in envelopes}) == 1
