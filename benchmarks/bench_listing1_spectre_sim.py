"""E13 -- Listing 1 end to end: Spectre v1 on the simulator, with defense ablation."""

from __future__ import annotations

import pytest

from repro.exploits import defense_ablation, run_spectre_v1
from repro.uarch import SimDefense, UarchConfig


@pytest.mark.experiment("E13")
def test_listing1_leaks_on_the_undefended_core(benchmark):
    result = benchmark(run_spectre_v1)
    print(f"\n{result}")
    assert result.success
    assert result.stats.speculative_windows >= 1
    assert result.stats.squashes >= 1


@pytest.mark.experiment("E13")
def test_listing1_recovers_arbitrary_bytes(benchmark):
    def run_sweep():
        return [run_spectre_v1(secret=value).recovered == value for value in (0x01, 0x42, 0x9C, 0xFF)]

    outcomes = benchmark(run_sweep)
    assert all(outcomes)


@pytest.mark.experiment("E13")
def test_listing1_defense_ablation(benchmark):
    rows = benchmark(lambda: defense_ablation("spectre_v1"))
    print("\nSpectre v1 defense ablation:")
    for row in rows:
        print(f"  {row.defense_name:45s} [{row.strategy_name:40s}] "
              f"{'LEAKS' if row.leaked else 'defeated'}")
    outcome = {row.defense: row.leaked for row in rows}
    assert outcome[None] is True
    # Strategies 1-4 all have an implementation that defeats Spectre v1...
    assert outcome[SimDefense.PREVENT_SPECULATIVE_LOADS] is False
    assert outcome[SimDefense.NO_SPECULATIVE_FORWARDING] is False
    assert outcome[SimDefense.INVISIBLE_SPECULATION] is False
    assert outcome[SimDefense.CLEANUP_ON_SQUASH] is False
    assert outcome[SimDefense.DELAY_SPECULATIVE_MISSES] is False
    assert outcome[SimDefense.PARTITIONED_CACHE] is False
    assert outcome[SimDefense.FLUSH_PREDICTORS] is False
    # ...while defenses aimed at other attacks do not.
    assert outcome[SimDefense.KERNEL_ISOLATION] is True
    assert outcome[SimDefense.NO_STORE_BYPASS] is True
