"""E21 -- The batch simulation plane: warm-session amortization.

Asserts the acceptance properties of ``Engine.simulate_batch``: a
campaign-shaped point list (repeated passes over the registry x defense
grid -- the shape fuzzing sweeps, resumed campaigns and overlapping
service traffic produce) is served at >= 10x the points/sec of the
isolated per-point loop, with rows identical point for point, and the
per-point envelopes byte-identical to ``Engine.simulate`` on an
equivalent session.  The same record lands in BENCH_core.json as the
``timing-batch`` benchmark, floor-enforced by ``repro perf --check``.
"""

from __future__ import annotations

import pytest

from repro.engine import Engine, _batch_point_spec
from repro.perf import THRESHOLDS, measure_timing_batch
from repro.uarch.timing.validate import SCENARIOS


@pytest.mark.experiment("E21")
def test_batch_campaign_is_10x_over_per_point_loop():
    """The acceptance bar: batch points/sec >= 10x the per-point loop.

    ``measure_timing_batch`` raises internally if the batch rows diverge
    from the per-point rows, so a passing run certifies both the floor and
    the differential identity.
    """
    record = measure_timing_batch()
    floor = THRESHOLDS["timing_batch_speedup_min"]
    print(
        f"\ntiming batch: {record['points']} points "
        f"({record['unique_simulations']} unique sims): per-point "
        f"{record['per_point_points_per_second']:.0f} pts/s vs batch "
        f"{record['batch_points_per_second']:.0f} pts/s -> "
        f"{record['speedup_batch_vs_per_point']:.1f}x"
    )
    assert record["points"] == record["epochs"] * 2 * len(SCENARIOS)
    assert record["speedup_batch_vs_per_point"] >= floor


@pytest.mark.experiment("E21")
def test_batch_envelopes_match_per_point_simulate(benchmark):
    """Serial batch envelopes are byte-identical to the per-point loop."""
    points = ["spectre_v1", "meltdown", "spectre_v1",
              {"attack": "lvi", "defenses": ("PREVENT_SPECULATIVE_LOADS",)}]
    batch = benchmark(lambda: Engine().simulate_batch(points))
    loop_engine = Engine()
    loop = [loop_engine.run(_batch_point_spec(point)) for point in points]
    assert [result.to_json() for result in batch.payload] == [
        result.to_json() for result in loop
    ]
    assert batch.data["points"] == len(points)
    assert batch.data["rows"] == [result.data for result in loop]


@pytest.mark.experiment("E21")
@pytest.mark.slow
def test_full_size_batch_sweep_matches_the_sweep_rows():
    """The full-size campaign: every (attack x defense) point, many epochs.

    Excluded from tier-1 behind the ``slow`` marker; cross-checks the batch
    plane against ``simulate_sweep`` on the complete grid.
    """
    from repro.uarch.defenses import SimDefense

    attacks = sorted(SCENARIOS)
    defenses = [None] + [defense.name for defense in SimDefense]
    base = [
        {"attack": attack} if defense is None
        else {"attack": attack, "defenses": (defense,)}
        for attack in attacks
        for defense in defenses
    ]
    points = base * 5
    with Engine() as engine:
        batch = engine.simulate_batch(points, parallel=2)
        sweep = engine.simulate_sweep()
    by_key = {
        (row["attack"], tuple(row["defenses"])): row for row in sweep.data["rows"]
    }
    assert batch.data["points"] == len(points)
    for point, row in zip(points, batch.data["rows"]):
        expected = by_key[
            (point["attack"],
             tuple(name.lower() for name in point.get("defenses", ())))
        ]
        assert row == expected
