"""Ablation A1 -- speculative window size.

The paper defines the speculative window as the interval between issuing the
first transient instruction and the resolution of the delayed authorization.
The Spectre v1 gadget needs three transient instructions (Load S, the shift,
and Load R) to complete inside the window, so the attack succeeds only when
the window is large enough -- the crossover this ablation locates.
"""

from __future__ import annotations

import pytest

from repro.exploits import run_meltdown, run_spectre_v1
from repro.uarch import UarchConfig


def leak_by_window(windows, runner):
    return {window: runner(UarchConfig(speculative_window=window)).success for window in windows}


@pytest.mark.experiment("A1")
def test_spectre_v1_needs_a_window_of_at_least_three(benchmark):
    outcomes = benchmark(lambda: leak_by_window(range(0, 9), run_spectre_v1))
    print("\nSpectre v1 leak vs speculative window size:")
    for window, leaked in outcomes.items():
        print(f"  window={window}: {'LEAKS' if leaked else 'no leak'}")
    assert not outcomes[0] and not outcomes[1] and not outcomes[2]
    assert outcomes[3] and outcomes[8]
    # The crossover sits exactly where the transient gadget fits.
    crossover = min(window for window, leaked in outcomes.items() if leaked)
    assert crossover == 3


@pytest.mark.experiment("A1")
def test_meltdown_crossover_is_one_instruction_earlier(benchmark):
    """Meltdown's secret is forwarded by the faulting load itself, so only the
    use (shift) and the send (probe load) must fit in the window: crossover 2."""
    outcomes = benchmark(lambda: leak_by_window((0, 1, 2, 3, 16, 64), run_meltdown))
    print("\nMeltdown leak vs speculative window size:")
    for window, leaked in outcomes.items():
        print(f"  window={window}: {'LEAKS' if leaked else 'no leak'}")
    assert not outcomes[0] and not outcomes[1]
    assert outcomes[2] and outcomes[3] and outcomes[64]
