"""Shared configuration for the benchmark harness.

Every benchmark module regenerates one of the paper's tables, figures or
listings (see DESIGN.md's experiment index E1-E16 and EXPERIMENTS.md for the
recorded outcomes).  Benchmarks both *assert* the qualitative result the
paper reports (who wins, which defense works, which race exists) and measure
how long the corresponding analysis takes with pytest-benchmark.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "experiment(id): mark a benchmark with its experiment id (E1-E16)"
    )
