"""Ablation A2 -- cache timing margin of the Flush+Reload channel.

The covert channel only works while the receiver can distinguish a hit from a
miss: the decision threshold must sit between the two latencies.  This
ablation sweeps the miss latency (with the threshold fixed) and the threshold
(with the latencies fixed) to locate where the channel stops carrying
information -- the receiver side of the paper's attack step 5.
"""

from __future__ import annotations

import pytest

from repro.exploits import run_spectre_v1
from repro.uarch import UarchConfig


@pytest.mark.experiment("A2")
def test_channel_needs_hit_latency_below_the_threshold(benchmark):
    def sweep_threshold():
        outcomes = {}
        for threshold in (2, 4, 10, 80, 150, 250):
            config = UarchConfig(hit_threshold=threshold)
            outcomes[threshold] = run_spectre_v1(config).success
        return outcomes

    outcomes = benchmark(sweep_threshold)
    print("\nSpectre v1 leak vs receiver decision threshold (hit=4, miss=200 cycles):")
    for threshold, leaked in outcomes.items():
        print(f"  threshold={threshold:4d}: {'LEAKS' if leaked else 'no signal'}")
    # Below the hit latency the receiver rejects everything; between hit and
    # miss latency the channel works; above the miss latency every entry looks
    # hot and the decoder can no longer single out the secret reliably, but the
    # minimum-latency pick still lands on the only true hit.
    assert not outcomes[2]
    assert outcomes[10] and outcomes[80] and outcomes[150]


@pytest.mark.experiment("A2")
def test_channel_needs_a_latency_gap(benchmark):
    def sweep_miss_latency():
        outcomes = {}
        for miss_latency in (4, 20, 60, 200, 400):
            config = UarchConfig(cache_miss_latency=miss_latency, hit_threshold=50)
            outcomes[miss_latency] = run_spectre_v1(config).success
        return outcomes

    outcomes = benchmark(sweep_miss_latency)
    print("\nSpectre v1 leak vs cache miss latency (hit=4 cycles, threshold=50):")
    for miss_latency, leaked in outcomes.items():
        print(f"  miss={miss_latency:4d} cycles: {'LEAKS' if leaked else 'no signal'}")
    # When misses are as fast as hits there is no timing channel at all.
    assert not outcomes[4]
    assert outcomes[200] and outcomes[400]
