"""E3 -- Table III: authorization and illegal-access nodes of every variant."""

from __future__ import annotations

import pytest

from repro.analysis import table3
from repro.attacks import ALL_VARIANTS, registry


@pytest.mark.experiment("E3")
def test_table3_regeneration(benchmark):
    rows = benchmark(registry.table3_rows)
    assert len(rows) == 18
    by_name = {row[0]: (row[1], row[2]) for row in rows}
    assert by_name["Spectre v1"] == (
        "Boundary-check branch resolution",
        "Read out-of-bounds memory",
    )
    assert by_name["Spectre v2"][1] == "Execute code not intended to be executed"
    assert by_name["Meltdown (Spectre v3)"] == ("Kernel privilege check", "Read from kernel memory")
    assert by_name["Lazy FP"] == ("FPU owner check", "Read stale FPU state")
    assert by_name["RIDL"][1] == "Forward data from fill buffer and load port"
    assert by_name["Cacheout"][0] == "TSX Asynchronous Abort Completion"


@pytest.mark.experiment("E3")
def test_table3_rendering(benchmark):
    text = benchmark(table3)
    print("\n" + text)
    assert "Store-load address dependency resolution" in text
    assert "Page permission check" in text


@pytest.mark.experiment("E3")
def test_every_variant_graph_has_authorization_and_access_vertices(benchmark):
    def check():
        results = {}
        for key, variant in ALL_VARIANTS.items():
            graph = variant.build_graph()
            results[key] = (graph.authorization_nodes, graph.secret_access_nodes)
        return results

    results = benchmark(check)
    for key, (authorizations, accesses) in results.items():
        assert authorizations, key
        assert accesses, key
