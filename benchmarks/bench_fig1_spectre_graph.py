"""E4 -- Figure 1: the Spectre v1/v2 attack graph and its races."""

from __future__ import annotations

import pytest

from repro.analysis import ascii_graph, race_report
from repro.attacks import Nodes, get
from repro.core import has_race


def build_and_analyze():
    graph = get("spectre_v1").build_graph()
    return graph, graph.find_vulnerabilities()


@pytest.mark.experiment("E4")
def test_figure1_graph_structure(benchmark):
    graph, vulnerabilities = benchmark(build_and_analyze)
    print("\n" + ascii_graph(graph))
    # The speculative window of Figure 1.
    assert set(graph.speculative_window) == {Nodes.LOAD_S, Nodes.COMPUTE_R, Nodes.LOAD_R}
    # The races the paper identifies between the authorization (branch
    # resolution) and the speculated operations.
    assert has_race(graph, Nodes.BRANCH_RESOLUTION, Nodes.LOAD_S)
    assert has_race(graph, Nodes.BRANCH_RESOLUTION, Nodes.LOAD_R)
    assert {v.dependency.protected for v in vulnerabilities} == {
        Nodes.LOAD_S,
        Nodes.COMPUTE_R,
        Nodes.LOAD_R,
    }


@pytest.mark.experiment("E4")
def test_figure1_covers_spectre_v2_and_rsb_variants(benchmark):
    def build_family():
        return {key: get(key).build_graph() for key in
                ("spectre_v1", "spectre_v1_1", "spectre_v1_2", "spectre_v2", "spectre_rsb")}

    graphs = benchmark(build_family)
    for key, graph in graphs.items():
        assert not graph.is_meltdown_type, key
        assert has_race(graph, Nodes.BRANCH_RESOLUTION, Nodes.LOAD_S), key
    print("\n" + race_report(graphs["spectre_v2"]))


@pytest.mark.experiment("E4")
def test_figure1_race_analysis_cost(benchmark):
    graph = get("spectre_v1").build_graph()
    races = benchmark(graph.find_races)
    assert any({Nodes.BRANCH_RESOLUTION, Nodes.LOAD_S} == set(r.as_pair()) for r in races)
