"""E8 -- Figure 5: special-register triggered attacks (Spectre v3a, LazyFP)."""

from __future__ import annotations

import pytest

from repro.attacks import Nodes, get
from repro.core import has_race
from repro.defenses import apply_prevent_use, attack_succeeds
from repro.exploits import run_lazy_fp, run_spectre_v3a


@pytest.mark.experiment("E8")
def test_figure5_graphs(benchmark):
    def build():
        return get("spectre_v3a").build_graph(), get("lazy_fp").build_graph()

    v3a, lazy_fp = benchmark(build)
    assert Nodes.read_from("special register") in v3a
    assert Nodes.read_from("FPU") in lazy_fp
    for graph in (v3a, lazy_fp):
        assert graph.is_meltdown_type
        assert has_race(graph, Nodes.AUTH_RESOLVED, graph.secret_access_nodes[0])
        assert not attack_succeeds(apply_prevent_use(graph))


@pytest.mark.experiment("E8")
def test_figure5_simulated_register_leaks(benchmark):
    """Both special-register attacks actually leak on the simulator."""

    def run_both():
        return run_spectre_v3a(), run_lazy_fp()

    v3a_result, lazy_result = benchmark(run_both)
    print(f"\n{v3a_result}\n{lazy_result}")
    assert v3a_result.success
    assert lazy_result.success
