"""E15 -- Section II-C: the cache covert channel taxonomy and channel fidelity."""

from __future__ import annotations

import pytest

from repro.channels import (
    CacheCollisionChannel,
    CacheTimingSurface,
    EvictTimeChannel,
    FlushReloadChannel,
    PrimeProbeChannel,
    taxonomy_rows,
)
from repro.uarch import SetAssociativeCache


def make_cache() -> SetAssociativeCache:
    return SetAssociativeCache(sets=64, ways=8, line_size=64, hit_latency=4, miss_latency=200)


@pytest.mark.experiment("E15")
def test_taxonomy(benchmark):
    rows = benchmark(taxonomy_rows)
    print("\nSection II-C channel taxonomy:")
    for row in rows:
        print(f"  {row[0]:15s} signal={row[1]:4s} granularity={row[2]:9s} shared-memory={row[3]}")
    assert len(rows) == 4


@pytest.mark.experiment("E15")
def test_flush_reload_transmits_every_byte(benchmark):
    """Hit + access based channel: the paper's default covert channel."""

    def transmit_all():
        cache = make_cache()
        channel = FlushReloadChannel(CacheTimingSurface(cache), 0x100_0000, entries=256)
        return sum(1 for value in range(0, 256, 16) if channel.transmit(value).value == value)

    correct = benchmark(transmit_all)
    assert correct == 16


@pytest.mark.experiment("E15")
def test_flush_reload_timing_separation(benchmark):
    """Hits and misses are separated by a wide timing margin."""

    def measure():
        cache = make_cache()
        channel = FlushReloadChannel(CacheTimingSurface(cache), 0x100_0000, entries=64)
        channel.prepare()
        channel.send(17)
        latencies = channel.measure()
        return latencies[17], max(latencies)

    hit_latency, miss_latency = benchmark(measure)
    print(f"\nFlush+Reload: hit={hit_latency} cycles, miss={miss_latency} cycles")
    assert hit_latency < miss_latency / 10


@pytest.mark.experiment("E15")
def test_prime_probe_transmits_set_indices(benchmark):
    """Miss + access based channel: no shared memory required."""

    def transmit_all():
        cache = make_cache()
        channel = PrimeProbeChannel(cache)
        return sum(1 for value in range(0, 64, 8) if channel.transmit(value).value == value)

    correct = benchmark(transmit_all)
    assert correct == 8


@pytest.mark.experiment("E15")
def test_evict_time_and_collision_channels(benchmark):
    """Operation-based channels: Evict+Time (miss) and cache collision (hit)."""

    def run_both():
        cache = make_cache()
        victim_address = 0x5000
        evict_channel = EvictTimeChannel(
            cache, lambda: cache.access(victim_address, partition=0).latency
        )
        evict_hit = evict_channel.receive().value == cache.set_index(victim_address)

        cache2 = make_cache()
        secret = 21
        table = 0x9000
        collision_channel = CacheCollisionChannel(
            cache2,
            lambda: cache2.access(table + secret * 64, partition=0).latency,
            table_base=table,
            entries=64,
            stride=64,
        )
        collision_hit = collision_channel.receive().value == secret
        return evict_hit, collision_hit

    evict_hit, collision_hit = benchmark(run_both)
    assert evict_hit and collision_hit
