"""E2 -- Table II: industrial defenses and the strategy each falls under."""

from __future__ import annotations

import pytest

from repro.analysis import defense_strategy_table, table2
from repro.defenses import (
    ALL_DEFENSES,
    INDUSTRY_DEFENSES,
    DefenseStrategy,
    table2_rows,
)


@pytest.mark.experiment("E2")
def test_table2_regeneration(benchmark):
    rows = benchmark(table2_rows)
    assert len(rows) == len(INDUSTRY_DEFENSES) == 15
    by_name = {row[2]: row for row in rows}
    assert by_name["LFence"][0] == "Spectre"
    assert "Meltdown" in by_name["Kernel Page Table Isolation (KPTI)"][0]
    assert "Spectre RSB" in by_name["RSB stuffing"][0]
    assert "Spectre v4" in by_name["Speculative Store Bypass Safe (SSBS)"][0]


@pytest.mark.experiment("E2")
def test_table2_rendering(benchmark):
    text = benchmark(table2)
    print("\n" + text)
    assert "Indirect Branch Prediction Barrier" in text
    assert "Coarse address masking" in text


@pytest.mark.experiment("E2")
def test_every_defense_falls_under_one_of_the_four_strategies(benchmark):
    """The paper's claim (insight 3), for industry and academia together."""
    text = benchmark(defense_strategy_table)
    print("\n" + text)
    strategies = {defense.strategy for defense in ALL_DEFENSES}
    assert strategies == set(DefenseStrategy)
    assert len(ALL_DEFENSES) == 29
