"""E17 -- Cycle-accurate timing core: the measured Theorem-1 race and the
event-queue scheduler's win over the per-cycle rescan baseline."""

from __future__ import annotations

import pytest

from repro import perf
from repro.uarch.timing import DEFAULT_MODEL, EventScheduler, RescanScheduler
from repro.uarch.timing.validate import cross_validate, timed_exploit


@pytest.mark.experiment("E17")
def test_spectre_v1_transmit_beats_squash(benchmark):
    """Listing 1 on the timing core: the covert send issues before the squash."""
    result = benchmark(lambda: timed_exploit("spectre_v1"))
    trace = result.timing
    window = trace.windows[0]
    print(
        f"\nspectre_v1: transmit @{window.transmit_cycle} vs squash "
        f"@{window.squash_cycle} over a {window.window_cycles}-cycle window"
    )
    assert result.success
    assert window.transmit_cycle <= window.squash_cycle


@pytest.mark.experiment("E17")
def test_registry_wide_theorem1_agreement(benchmark):
    """Every registry attack: measured race outcome == TSG race verdict."""
    checks = benchmark(cross_validate)
    agreeing = sum(1 for check in checks if check.agrees)
    print(f"\nTheorem 1 cross-validation: {agreeing}/{len(checks)} attacks agree")
    assert agreeing == len(checks)


@pytest.mark.experiment("E17")
def test_event_queue_beats_rescan_baseline(benchmark):
    """The acceptance bar: event-driven scheduling >= 5x over the rescan loop
    on a 500-instruction serialized-miss program."""
    program = perf.build_timing_program(500)
    from repro.uarch.timing import TimingCPU

    cpu = TimingCPU(program)
    cpu.run()
    ops = cpu.last_ops

    event = benchmark(lambda: EventScheduler(DEFAULT_MODEL).schedule(ops))
    rescan = RescanScheduler(DEFAULT_MODEL).schedule(ops)
    assert event == rescan
    record = perf.measure_timing_scheduler(instructions=500, repeats=1)
    print(
        f"\nevent queue {record['event_seconds'] * 1e3:.2f} ms vs rescan "
        f"{record['rescan_seconds'] * 1e3:.1f} ms on {record['instructions']} "
        f"instructions -> {record['speedup_event_vs_rescan']:.1f}x"
    )
    assert record["speedup_event_vs_rescan"] >= 5
