"""E14 -- Listing 2 end to end: Meltdown on the simulator, with defense ablation."""

from __future__ import annotations

import pytest

from repro.exploits import defense_ablation, run_foreshadow, run_meltdown, run_mds
from repro.uarch import SimDefense, UarchConfig


@pytest.mark.experiment("E14")
def test_listing2_leaks_kernel_memory(benchmark):
    result = benchmark(run_meltdown)
    print(f"\n{result}")
    assert result.success
    assert result.stats.faults == 1
    assert result.stats.faults_suppressed == 1


@pytest.mark.experiment("E14")
def test_listing2_defense_ablation(benchmark):
    rows = benchmark(lambda: defense_ablation("meltdown"))
    print("\nMeltdown defense ablation:")
    for row in rows:
        print(f"  {row.defense_name:45s} [{row.strategy_name:40s}] "
              f"{'LEAKS' if row.leaked else 'defeated'}")
    outcome = {row.defense: row.leaked for row in rows}
    assert outcome[None] is True
    assert outcome[SimDefense.KERNEL_ISOLATION] is False
    assert outcome[SimDefense.PREVENT_SPECULATIVE_LOADS] is False
    assert outcome[SimDefense.NO_SPECULATIVE_FORWARDING] is False
    assert outcome[SimDefense.INVISIBLE_SPECULATION] is False
    # Defenses that do not address Meltdown leave it leaking.
    assert outcome[SimDefense.FLUSH_PREDICTORS] is True
    assert outcome[SimDefense.NO_STORE_BYPASS] is True


@pytest.mark.experiment("E14")
def test_listing2_kpti_false_sense_of_security(benchmark):
    """Section V-B: KPTI stops baseline Meltdown but neither Foreshadow (L1TF)
    nor the MDS attacks, because the secret no longer comes from memory."""
    config = UarchConfig().with_defenses(SimDefense.KERNEL_ISOLATION)

    def run_triplet():
        return run_meltdown(config), run_foreshadow(config), run_mds(config)

    meltdown_result, foreshadow_result, mds_result = benchmark(run_triplet)
    print(f"\nUnder KPTI: {meltdown_result}; {foreshadow_result}; {mds_result}")
    assert not meltdown_result.success
    assert foreshadow_result.success
    assert mds_result.success
