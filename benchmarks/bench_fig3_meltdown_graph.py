"""E6 -- Figure 3: the Meltdown attack graph with intra-instruction micro-ops."""

from __future__ import annotations

import pytest

from repro.analysis import ascii_graph
from repro.attacks import Nodes, get
from repro.core import ExecutionLevel, has_race


@pytest.mark.experiment("E6")
def test_figure3_meltdown_graph(benchmark):
    graph = benchmark(lambda: get("meltdown").build_graph())
    print("\n" + ascii_graph(graph))
    # Authorization and access are micro-ops of the same load instruction.
    assert graph.is_meltdown_type
    assert graph.operation(Nodes.PERMISSION_CHECK).level is ExecutionLevel.MICROARCHITECTURAL
    assert Nodes.read_from("memory") in graph
    # The race: the data read and the covert send can complete before the
    # permission check resolves.
    assert has_race(graph, Nodes.AUTH_RESOLVED, Nodes.read_from("memory"))
    assert has_race(graph, Nodes.AUTH_RESOLVED, Nodes.LOAD_R)


@pytest.mark.experiment("E6")
def test_figure3_vs_figure1_granularity(benchmark):
    """Insight 6: Meltdown-type graphs need intra-instruction vertices, Spectre-type do not."""

    def classify():
        meltdown = get("meltdown").build_graph()
        spectre = get("spectre_v1").build_graph()
        return meltdown.is_meltdown_type, spectre.is_meltdown_type

    meltdown_micro, spectre_micro = benchmark(classify)
    assert meltdown_micro and not spectre_micro


@pytest.mark.experiment("E6")
def test_figure3_foreshadow_variants_share_the_graph_shape(benchmark):
    def build():
        return [get(key).build_graph() for key in ("foreshadow", "foreshadow_os", "foreshadow_vmm")]

    graphs = benchmark(build)
    for graph in graphs:
        assert Nodes.read_from("cache") in graph
        assert graph.is_vulnerable()
