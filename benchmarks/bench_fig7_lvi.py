"""E10 -- Figure 7: Load Value Injection."""

from __future__ import annotations

import pytest

from repro.attacks import LVI_SOURCES, Nodes, build_lvi_graph, get
from repro.core import has_race
from repro.defenses import (
    apply_prevent_access,
    apply_prevent_send,
    apply_prevent_use,
    attack_succeeds,
)


@pytest.mark.experiment("E10")
def test_figure7_graph_structure(benchmark):
    graph = benchmark(lambda: get("lvi").build_graph())
    # The attacker's planted value M can be forwarded from any of the buffers...
    for source in LVI_SOURCES:
        assert Nodes.read_m_from(source) in graph
        assert has_race(graph, Nodes.AUTH_RESOLVED, Nodes.read_m_from(source))
    # ...diverting the victim's flow, which then loads and sends the secret.
    assert graph.has_path(Nodes.PLANT_BUFFER, Nodes.DIVERT)
    assert graph.has_path(Nodes.DIVERT, Nodes.LOAD_R)
    assert graph.is_vulnerable()


@pytest.mark.experiment("E10")
def test_figure7_defenses(benchmark):
    graph = build_lvi_graph()

    def evaluate():
        return (
            attack_succeeds(apply_prevent_access(graph)),
            attack_succeeds(apply_prevent_use(graph)),
            attack_succeeds(apply_prevent_send(graph)),
        )

    access_leaks, use_leaks, send_leaks = benchmark(evaluate)
    print(f"\nLVI after defenses 1/2/3 still leaks: {access_leaks}/{use_leaks}/{send_leaks}")
    assert not access_leaks and not use_leaks and not send_leaks
