"""P1 -- perf guard for the reachability-indexed TSG core.

Asserts the two acceptance properties of the bitset-closure refactor:

* all-pairs race analysis on the 200-vertex / 1000-edge synthetic TSG is at
  least 10x faster than the seed's BFS-per-query implementation (in
  practice it is three orders of magnitude faster), and
* the downset-DP ordering counter agrees exactly with the enumeration
  counter on every attack graph in the registry.

The trajectory harness (``benchmarks/run_perf.py`` / ``repro perf``) records
the same measurements into BENCH_core.json for cross-PR tracking.
"""

from __future__ import annotations

import time

import pytest

from repro.attacks import build_all_graphs
from repro.core import figure2_example
from repro.perf import bfs_racing_pairs, build_layered_dag


def _min_time(fn, repeats: int = 5):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.experiment("P1")
def test_all_pairs_race_speedup_200v_1000e(benchmark):
    """Closure-based all-pairs races >= 10x faster than the seed BFS, same answer."""
    graph = build_layered_dag(200, width=5, extra_edges=25)
    assert len(graph) == 200
    assert len(graph.edges) >= 1000

    closure_races = benchmark(graph.all_racing_pairs)
    closure_seconds, _ = _min_time(graph.all_racing_pairs)
    bfs_seconds, bfs_races = _min_time(lambda: bfs_racing_pairs(graph), repeats=1)

    assert set(map(frozenset, bfs_races)) == set(map(frozenset, closure_races))
    speedup = bfs_seconds / closure_seconds
    print(
        f"\nall-pairs races on 200v/1000e: closure {closure_seconds * 1e3:.3f} ms, "
        f"seed BFS {bfs_seconds * 1e3:.1f} ms -> {speedup:.0f}x"
    )
    assert speedup >= 10.0


@pytest.mark.experiment("P1")
def test_count_orderings_parity_on_registry_graphs(benchmark):
    """DP counts == enumeration counts on every registry attack graph."""
    graphs = build_all_graphs()
    cap = 50000

    def dp_counts():
        return {key: graph.count_orderings(limit=cap) for key, graph in graphs.items()}

    counted = benchmark(dp_counts)
    for key, graph in graphs.items():
        enumerated = sum(1 for _ in graph.all_orderings(limit=cap))
        assert counted[key] == enumerated, f"count mismatch on {key}"
    assert len(counted) == len(graphs)


@pytest.mark.experiment("P1")
def test_figure2_exact_count_uncapped(benchmark):
    """The DP gives the exact (uncapped) linear-extension count of Figure 2."""
    graph = figure2_example()
    exact = benchmark(lambda: graph.count_orderings(limit=None))
    assert exact == sum(1 for _ in graph.all_orderings())


@pytest.mark.experiment("P1")
def test_closure_scales_to_500v(benchmark):
    """The 500-vertex graph is still sub-millisecond-per-sweep territory."""
    graph = build_layered_dag(500, width=5, extra_edges=50)
    races = benchmark(graph.all_racing_pairs)
    assert len(graph) == 500
    assert races and all(u != v for u, v in races)
