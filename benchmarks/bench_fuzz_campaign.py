"""E22 -- The differential fuzzing campaign: dual-oracle throughput.

Asserts the acceptance properties of ``repro.fuzz``: a seeded campaign
pushes whole generated gadget programs through BOTH leak oracles (the
TSG structural verdict and the cycle-accurate transmit/squash race) at
>= the ``fuzz_points_per_second_min`` floor, with *zero* oracle
disagreements and zero quarantined points on a clean run -- the two
oracles answering differently on any generated gadget is a soundness
regression, not a perf one.  The same record lands in BENCH_core.json
as the ``fuzz-throughput`` benchmark, enforced by ``repro perf --check``.
"""

from __future__ import annotations

import pytest

from repro.engine import Engine
from repro.fuzz import make_case
from repro.perf import THRESHOLDS, measure_fuzz_throughput


@pytest.mark.experiment("E22")
def test_fuzz_campaign_meets_the_throughput_floor():
    """The acceptance bar: programs/s through both oracles >= the floor,
    disagreements pinned at zero."""
    record = measure_fuzz_throughput(count=96, repeats=2)
    floor = THRESHOLDS["fuzz_points_per_second_min"]
    print(
        f"\nfuzz campaign: {record['count']} generated programs across "
        f"{record['buckets']} buckets -> {record['points_per_second']:.0f} "
        f"programs/s, {record['disagreed']} disagreements"
    )
    assert record["executed"] == record["count"]
    assert record["points_per_second"] >= floor
    assert record["disagreed"] == 0
    assert record["quarantined"] == 0


@pytest.mark.experiment("E22")
def test_campaign_rate_scales_from_generation_rate(benchmark):
    """Generation alone is orders of magnitude cheaper than the oracles:
    the campaign rate is oracle-bound, so the floor grades the oracles."""
    cases = benchmark(lambda: [make_case(0, i) for i in range(96)])
    assert len({case.sha for case in cases}) > 1


@pytest.mark.experiment("E22")
@pytest.mark.slow
def test_warm_campaign_replay_is_free():
    """A second identical campaign against the same store is a warm
    envelope hit -- no oracle re-runs at all."""
    from repro.store import MemoryStore

    engine = Engine(store=MemoryStore())
    cold = engine.run_fuzz_campaign(seed=3, count=64)
    warm = engine.run_fuzz_campaign(seed=3, count=64)
    assert cold.cache != "warm"
    assert warm.cache == "warm"
    assert warm.data == cold.data
