"""E16 -- Section V-A: finding new attacks by combining the three attack dimensions."""

from __future__ import annotations

import pytest

from repro.attacks import (
    CovertChannelKind,
    DelayMechanism,
    SecretSource,
    enumerate_attack_space,
    novel_combinations,
    published_combinations,
)


@pytest.mark.experiment("E16")
def test_attack_space_enumeration(benchmark):
    space = benchmark(lambda: list(enumerate_attack_space()))
    expected = len(SecretSource) * len(DelayMechanism) * len(CovertChannelKind)
    print(
        f"\nAttack space: {len(space)} combinations "
        f"({len(SecretSource)} sources x {len(DelayMechanism)} delays x "
        f"{len(CovertChannelKind)} channels)"
    )
    assert len(space) == expected


@pytest.mark.experiment("E16")
def test_novel_combinations_dominate_the_space(benchmark):
    novel = benchmark(novel_combinations)
    published = published_combinations()
    print(
        f"\nPublished combinations: {len(published)}; unexplored candidate attacks: {len(novel)}"
    )
    assert len(published) < 25
    assert len(novel) > 500  # the space of new attacks is vast -- the paper's point


@pytest.mark.experiment("E16")
def test_sampled_new_attacks_yield_vulnerable_graphs(benchmark):
    """Every new combination produces an attack graph with a missing security
    dependency -- i.e. a real candidate attack."""
    sample = novel_combinations(
        sources=[SecretSource.STORE_BUFFER, SecretSource.FPU_REGISTERS, SecretSource.L1_CACHE],
        delays=[DelayMechanism.CONDITIONAL_BRANCH, DelayMechanism.TSX_ABORT],
        channels=[CovertChannelKind.PRIME_PROBE, CovertChannelKind.FUNCTIONAL_UNIT],
    )

    def build_all():
        return [attack.build_graph() for attack in sample]

    graphs = benchmark(build_all)
    assert graphs
    assert all(graph.is_vulnerable() for graph in graphs)
    for attack in sample[:4]:
        print("\n" + attack.describe())
