"""E5 -- Figure 2 and Theorem 1: TSG orderings, races and the race <=> no-path theorem."""

from __future__ import annotations

import pytest

from repro.core import (
    figure2_example,
    find_races,
    has_race,
    verify_theorem1,
    witness_orderings,
)


@pytest.mark.experiment("E5")
def test_figure2_orderings_match_the_paper(benchmark):
    graph = figure2_example()

    def check_orderings():
        return (
            graph.is_valid_ordering(list("ABCDEFG")),
            graph.is_valid_ordering(list("ACEBDFG")),
            graph.is_valid_ordering(list("ABDECFG")),
            graph.count_orderings(),
        )

    valid1, valid2, invalid, count = benchmark(check_orderings)
    print(f"\nFigure 2: {count} valid orderings")
    assert valid1 and valid2 and not invalid
    assert count > 2


@pytest.mark.experiment("E5")
def test_figure2_race_between_d_and_e(benchmark):
    graph = figure2_example()
    races = benchmark(lambda: find_races(graph))
    pairs = {frozenset(race.as_pair()) for race in races}
    print(f"\nFigure 2 racing pairs: {sorted(tuple(sorted(p)) for p in pairs)}")
    assert frozenset({"D", "E"}) in pairs
    witnesses = witness_orderings(graph, "D", "E")
    assert witnesses is not None


@pytest.mark.experiment("E5")
def test_theorem1_exhaustive_verification(benchmark):
    """Race by ordering-enumeration <=> no directed path, on the Figure 2 TSG."""
    graph = figure2_example()
    check = benchmark(lambda: verify_theorem1(graph))
    assert check.holds
    assert check.pairs_checked == 21


@pytest.mark.experiment("E5")
def test_theorem1_edge_insertion_removes_race(benchmark):
    def insert_and_check():
        graph = figure2_example()
        graph.add_edge("E", "D")
        return has_race(graph, "D", "E"), verify_theorem1(graph).holds

    race_after, theorem_holds = benchmark(insert_and_check)
    assert not race_after and theorem_holds
