"""E11 -- Figure 8: the four defense strategies against branch-triggered attacks,
and the full defense x attack evaluation matrix."""

from __future__ import annotations

import pytest

from repro.attacks import Nodes, get, variants
from repro.core import has_race
from repro.defenses import (
    ALL_DEFENSES,
    DefenseStrategy,
    apply_clear_predictions,
    apply_prevent_access,
    apply_prevent_send,
    apply_prevent_use,
    attack_succeeds,
    evaluate_matrix,
    setup_neutralized,
)


@pytest.mark.experiment("E11")
def test_figure8_four_placements_on_spectre(benchmark):
    graph = get("spectre_v1").build_graph()

    def evaluate():
        return {
            1: attack_succeeds(apply_prevent_access(graph)),
            2: attack_succeeds(apply_prevent_use(graph)),
            3: attack_succeeds(apply_prevent_send(graph)),
            4: not setup_neutralized(apply_clear_predictions(graph)),
        }

    still_leaks = benchmark(evaluate)
    print(f"\nFigure 8 placements (True = still leaks): {still_leaks}")
    assert not any(still_leaks.values())


@pytest.mark.experiment("E11")
def test_figure8_strategy2_and_3_are_security_performance_tradeoffs(benchmark):
    """Strategies 2 and 3 leave the access race open (better performance) but
    still stop the leak -- the paper's 'relaxed' security dependency."""
    graph = get("spectre_v1").build_graph()

    def evaluate():
        use_defended = apply_prevent_use(graph)
        send_defended = apply_prevent_send(graph)
        return (
            has_race(use_defended, Nodes.BRANCH_RESOLUTION, Nodes.LOAD_S),
            attack_succeeds(use_defended),
            has_race(send_defended, Nodes.BRANCH_RESOLUTION, Nodes.COMPUTE_R),
            attack_succeeds(send_defended),
        )

    access_race_open, use_leaks, use_race_open, send_leaks = benchmark(evaluate)
    assert access_race_open and not use_leaks
    assert use_race_open and not send_leaks


@pytest.mark.experiment("E11")
def test_full_defense_matrix(benchmark):
    """Every catalogued defense, evaluated against every catalogued attack."""
    matrix = benchmark(lambda: evaluate_matrix(ALL_DEFENSES, variants()))
    assert len(matrix) == len(ALL_DEFENSES) * 19
    effective = [evaluation for evaluation in matrix if evaluation.effective]
    print(
        f"\nDefense matrix: {len(matrix)} evaluations, {len(effective)} effective "
        f"(defense applies and removes the leak)"
    )
    # Every attack is defeated by at least one defense, and every defense
    # defeats at least one attack it targets.
    attacks_defended = {evaluation.attack_key for evaluation in effective}
    defenses_useful = {evaluation.defense_key for evaluation in effective}
    assert len(attacks_defended) == 19
    assert len(defenses_useful) == len(ALL_DEFENSES)
    # Spot checks the paper makes explicitly.
    verdict = {(e.defense_key, e.attack_key): e.effective for e in matrix}
    assert verdict[("lfence", "spectre_v1")]
    assert verdict[("kpti", "meltdown")]
    assert not verdict[("kpti", "foreshadow")]
    assert not verdict[("ibpb", "meltdown")]
    assert verdict[("stt", "lvi")]
