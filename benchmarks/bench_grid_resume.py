"""E19 -- Fault-tolerant streaming grids: checkpoint overhead + resume.

Asserts the acceptance properties of the resumable-campaign redesign: a
clean grid checkpointing every point through a DiskStore stays within the
ROADMAP overhead ceiling of the plain in-memory run (byte-identical
envelope), a resumed campaign recomputes zero completed points, and a
grid with an always-failing point quarantines it while the rest of the
grid completes.
"""

from __future__ import annotations

import pytest

from repro.engine import Engine, FailurePolicy
from repro.faults import FaultPlan, FaultSpec
from repro.perf import THRESHOLDS, measure_grid_resume
from repro.scenario import ScenarioGrid
from repro.store import DiskStore


@pytest.mark.experiment("E19")
def test_checkpoint_overhead_and_resume(benchmark):
    """The acceptance bar: overhead under the ceiling, resume recomputes 0."""
    record = benchmark(lambda: measure_grid_resume(points=50, repeats=1))
    print(
        f"\ngrid resume ({record['points']} points): plain "
        f"{record['plain_seconds'] * 1e3:.0f} ms vs checkpointed "
        f"{record['checkpoint_seconds'] * 1e3:.0f} ms "
        f"({record['overhead_fraction']:+.1%}); resume "
        f"{record['resume_seconds'] * 1e3:.0f} ms, "
        f"{record['resume_recomputed']} recomputed"
    )
    assert record["resume_recomputed"] == 0
    # The CI floor runs at 200 points where the fixed costs amortize; the
    # 50-point smoke keeps a slack factor on the same ceiling.
    assert record["overhead_fraction"] <= 3 * THRESHOLDS["grid_resume_overhead_max"]


@pytest.mark.experiment("E19")
def test_poisoned_point_quarantines_while_the_grid_completes(tmp_path, benchmark):
    """An always-crashing point must not take the campaign down with it."""
    grid = ScenarioGrid(
        "simulate", axes={"attack": ["spectre_v1"], "secret": list(range(8))}
    )
    faults = FaultPlan([FaultSpec(kind="exception", match="secret=5")])
    policy = FailurePolicy(retries=1, backoff=0.001, jitter=0.0)

    def poisoned_run():
        store = DiskStore(root=tmp_path, version="bench")
        store.clear()
        with Engine(store=store, policy=policy, faults=faults) as engine:
            return engine.run_grid(grid)

    result = benchmark(poisoned_run)
    assert result.data["quarantined"] == 1
    assert result.data["points"] == 8
    healthy = [row for i, row in enumerate(result.data["rows"]) if i != 5]
    assert all("quarantined" not in row["data"] for row in healthy)
